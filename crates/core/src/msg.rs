//! Wire messages exchanged between Teechain enclaves.
//!
//! Two layers:
//!
//! * [`WireMsg`] — what actually travels on the network: plaintext
//!   handshake messages (carrying attestation quotes) and AEAD-sealed
//!   envelopes for everything after.
//! * [`ProtocolMsg`] — the protocol payload inside a sealed envelope:
//!   channel operations (Alg. 1), multi-hop stages (Alg. 2), replication
//!   (Alg. 3) and committee signing traffic.
//!
//! Freshness (the paper's "nonces or monotonic counters for message
//! freshness", §7.1) is provided by strictly increasing per-session
//! sequence numbers used as AEAD nonces: replayed, reordered or dropped
//! messages fail authentication.

use crate::channel::Channel;
use crate::swap::SwapState;
use crate::types::{ChannelId, Deposit, MultihopStage, RouteId, SwapId};
use teechain_blockchain::{OutPoint, Transaction, TxId};
use teechain_crypto::schnorr::{PublicKey, Signature};
use teechain_tee::Quote;
use teechain_util::codec::{Decode, Encode, Reader, WireError};

/// A network-visible message.
#[derive(Debug, Clone)]
pub enum WireMsg {
    /// Handshake initiation: attested identity + ephemeral DH key.
    Hello(Handshake),
    /// Handshake response.
    HelloAck(Handshake),
    /// An encrypted protocol message.
    Sealed {
        /// Sender's enclave identity key (routing hint; authenticity comes
        /// from the AEAD, not this field).
        from: PublicKey,
        /// Per-direction sequence number (AEAD nonce).
        seq: u64,
        /// Coarse message class (see [`CostClass`]) — visible to the host
        /// so the simulator can charge CPU service time per message kind.
        /// Leaks no more than message sizes already do.
        class: u8,
        /// AEAD ciphertext of an encoded [`ProtocolMsg`].
        ct: Vec<u8>,
    },
}

/// Coarse, host-visible message classes for CPU cost accounting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CostClass {
    /// Control traffic (handshakes, channel management, settlement).
    Control = 0,
    /// Payments and their acks (the hot path).
    Payment = 1,
    /// Replication state updates (apply + forward).
    Replication = 2,
    /// Multi-hop stage messages.
    Multihop = 3,
    /// Replication acknowledgements (cheap bookkeeping).
    ReplicationAck = 4,
}

impl CostClass {
    /// Classifies a protocol message.
    pub fn of(msg: &ProtocolMsg) -> CostClass {
        match msg {
            ProtocolMsg::Pay { .. } | ProtocolMsg::PayAck { .. } | ProtocolMsg::PayNack { .. } => {
                CostClass::Payment
            }
            ProtocolMsg::RepUpdate { .. } => CostClass::Replication,
            ProtocolMsg::RepAck { .. } => CostClass::ReplicationAck,
            ProtocolMsg::MhLock(_)
            | ProtocolMsg::MhSign { .. }
            | ProtocolMsg::MhPreUpdate { .. }
            | ProtocolMsg::MhUpdate { .. }
            | ProtocolMsg::MhPostUpdate { .. }
            | ProtocolMsg::MhRelease { .. }
            | ProtocolMsg::MhAbort { .. } => CostClass::Multihop,
            _ => CostClass::Control,
        }
    }

    /// Decodes from the wire byte (unknown values collapse to control).
    pub fn from_byte(b: u8) -> CostClass {
        match b {
            1 => CostClass::Payment,
            2 => CostClass::Replication,
            3 => CostClass::Multihop,
            4 => CostClass::ReplicationAck,
            _ => CostClass::Control,
        }
    }
}

/// Handshake payload (both directions).
#[derive(Debug, Clone)]
pub struct Handshake {
    /// Sender's enclave identity public key.
    pub identity: PublicKey,
    /// Sender's ephemeral DH public key.
    pub eph: PublicKey,
    /// Attestation quote binding `H(identity || eph)`.
    pub quote: Quote,
    /// Identity signature over the transcript (binds the intended peer,
    /// preventing relay/state-forking across enclaves, §4.1).
    pub sig: Signature,
}

teechain_util::impl_wire_struct!(Handshake {
    identity,
    eph,
    quote,
    sig,
});

impl Encode for WireMsg {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            WireMsg::Hello(h) => {
                0u8.encode(out);
                h.encode(out);
            }
            WireMsg::HelloAck(h) => {
                1u8.encode(out);
                h.encode(out);
            }
            WireMsg::Sealed {
                from,
                seq,
                class,
                ct,
            } => {
                2u8.encode(out);
                from.encode(out);
                seq.encode(out);
                class.encode(out);
                ct.encode(out);
            }
        }
    }
}

impl Decode for WireMsg {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(match r.read::<u8>()? {
            0 => WireMsg::Hello(r.read()?),
            1 => WireMsg::HelloAck(r.read()?),
            2 => WireMsg::Sealed {
                from: r.read()?,
                seq: r.read()?,
                class: r.read()?,
                ct: r.read()?,
            },
            _ => return Err(WireError::InvalidValue("wire tag")),
        })
    }
}

/// A replicated state mutation (force-freeze chain replication, §6).
#[derive(Debug, Clone)]
pub enum StateDelta {
    /// Install or overwrite full channel state (rare path).
    Channel(Box<Channel>),
    /// Hot path: a payment's balance movement on one channel.
    Pay {
        /// The channel.
        id: ChannelId,
        /// Signed delta to our balance.
        my_delta: i64,
        /// Signed delta to the remote balance.
        remote_delta: i64,
    },
    /// A multi-hop stage transition.
    Stage {
        /// The channel.
        id: ChannelId,
        /// New stage.
        stage: MultihopStage,
    },
    /// Install a deposit (and, if present, the member's private key for it).
    Deposit {
        /// The deposit.
        dep: Deposit,
        /// Serialized private key, if this member holds one.
        key: Option<[u8; 32]>,
        /// True if the staging enclave owns this deposit (it entered via
        /// `NewDeposit`/association of *our* deposit rather than a
        /// counterparty's). Replicas ignore this; WAL recovery uses it
        /// to rebuild the own/remote split of the deposit book.
        mine: bool,
    },
    /// Remove a deposit (released or spent).
    RemoveDeposit(OutPoint),
    /// Store or clear a route's intermediate settlement transaction τ.
    Tau {
        /// The route.
        route: RouteId,
        /// The (possibly partially signed) τ, or `None` to discard.
        tau: Option<Transaction>,
    },
    /// Remove all state for a settled channel.
    CloseChannel(ChannelId),
    /// Install or overwrite a cross-chain swap's state — one record per
    /// phase transition, so WAL replay recovers a crashed enclave to the
    /// exact committed phase.
    Swap(Box<SwapState>),
}

impl Encode for StateDelta {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            StateDelta::Channel(c) => {
                0u8.encode(out);
                c.as_ref().encode(out);
            }
            StateDelta::Pay {
                id,
                my_delta,
                remote_delta,
            } => {
                1u8.encode(out);
                id.encode(out);
                my_delta.encode(out);
                remote_delta.encode(out);
            }
            StateDelta::Stage { id, stage } => {
                2u8.encode(out);
                id.encode(out);
                stage.encode(out);
            }
            StateDelta::Deposit { dep, key, mine } => {
                3u8.encode(out);
                dep.encode(out);
                key.encode(out);
                mine.encode(out);
            }
            StateDelta::RemoveDeposit(op) => {
                4u8.encode(out);
                op.encode(out);
            }
            StateDelta::Tau { route, tau } => {
                5u8.encode(out);
                route.encode(out);
                tau.encode(out);
            }
            StateDelta::CloseChannel(id) => {
                6u8.encode(out);
                id.encode(out);
            }
            StateDelta::Swap(s) => {
                7u8.encode(out);
                s.as_ref().encode(out);
            }
        }
    }
}

impl Decode for StateDelta {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(match r.read::<u8>()? {
            0 => StateDelta::Channel(Box::new(r.read()?)),
            1 => StateDelta::Pay {
                id: r.read()?,
                my_delta: r.read()?,
                remote_delta: r.read()?,
            },
            2 => StateDelta::Stage {
                id: r.read()?,
                stage: r.read()?,
            },
            3 => StateDelta::Deposit {
                dep: r.read()?,
                key: r.read()?,
                mine: r.read()?,
            },
            4 => StateDelta::RemoveDeposit(r.read()?),
            5 => StateDelta::Tau {
                route: r.read()?,
                tau: r.read()?,
            },
            6 => StateDelta::CloseChannel(r.read()?),
            7 => StateDelta::Swap(Box::new(r.read()?)),
            _ => return Err(WireError::InvalidValue("delta tag")),
        })
    }
}

/// A settlement digest entry shared along a multi-hop route: the txid of a
/// channel's settlement at pre- or post-payment state. Confirmed
/// transactions matching these digests act as proofs of premature
/// termination (§5.1).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SettleDigest {
    /// Settlement transaction id.
    pub txid: TxId,
    /// True for the post-payment settlement.
    pub post: bool,
}

teechain_util::impl_wire_struct!(SettleDigest { txid, post });

/// Multi-hop lock message (Alg. 2 line 5): travels p1 → pn accumulating
/// the intermediate settlement transaction τ and the settlement digests.
#[derive(Debug, Clone)]
pub struct MhLock {
    /// Route instance id.
    pub route: RouteId,
    /// Payment amount.
    pub amount: u64,
    /// Identity keys of p1..pn.
    pub hops: Vec<PublicKey>,
    /// Channel ids along the path (`hops.len() - 1` of them).
    pub channels: Vec<ChannelId>,
    /// τ under construction: inputs/outputs appended by each hop.
    pub tau: Transaction,
    /// Settlement digests accumulated so far.
    pub digests: Vec<SettleDigest>,
    /// Committee metadata for every deposit τ spends (accumulated along
    /// the path so every TEE can check τ's signature thresholds).
    pub deposits: Vec<Deposit>,
}

teechain_util::impl_wire_struct!(MhLock {
    route,
    amount,
    hops,
    channels,
    tau,
    digests,
    deposits,
});

/// The protocol payload of a sealed envelope.
#[derive(Debug, Clone)]
pub enum ProtocolMsg {
    // ---- Payment channels (Alg. 1) ----
    /// Channel proposal (carries the initiator's settlement address).
    NewChannel {
        /// Proposed channel id.
        id: ChannelId,
        /// Initiator's on-chain settlement key.
        settlement: PublicKey,
    },
    /// Channel acknowledgement (Alg. 1 line 26).
    NewChannelAck {
        /// Channel id.
        id: ChannelId,
        /// Responder's on-chain settlement key.
        settlement: PublicKey,
    },
    /// "Please approve my deposit" (Alg. 1 line 52).
    ApproveDeposit {
        /// The deposit to validate against the blockchain.
        deposit: Deposit,
    },
    /// Deposit approved (Alg. 1 line 58).
    DepositApproved {
        /// The approved deposit's outpoint.
        outpoint: OutPoint,
    },
    /// Associate an approved deposit with a channel (Alg. 1 line 73).
    AssociateDeposit {
        /// Channel.
        id: ChannelId,
        /// The deposit.
        deposit: Deposit,
        /// For 1-of-1 deposits: the deposit private key, shared so the
        /// remote can settle unilaterally (Alg. 1 line 72). Already
        /// confidential under the session AEAD.
        key: Option<[u8; 32]>,
    },
    /// Dissociate request (Alg. 1 line 93).
    DissociateDeposit {
        /// Channel.
        id: ChannelId,
        /// Deposit being freed.
        outpoint: OutPoint,
    },
    /// Dissociation acknowledged; receiver destroys its key copy
    /// (Alg. 1 line 99).
    DissociateAck {
        /// Channel.
        id: ChannelId,
        /// Deposit.
        outpoint: OutPoint,
    },
    /// A payment (Alg. 1 line 86). May carry `count` batched logical
    /// payments (client-side batching, §7).
    Pay {
        /// Channel.
        id: ChannelId,
        /// Total amount.
        amount: u64,
        /// Number of logical payments merged into this message.
        count: u32,
    },
    /// Payment acknowledgement (defines the paper's latency metric).
    PayAck {
        /// Channel.
        id: ChannelId,
        /// Amount acknowledged.
        amount: u64,
        /// Batched count acknowledged.
        count: u32,
    },
    /// Payment refused; the sender rolls its optimistic debit back.
    /// `reason` carries the refusing side's [`ProtocolError::abort_code`](crate::types::ProtocolError::abort_code)
    /// (e.g. a deferred payment expiring behind a lock, or arriving on a
    /// channel that closed) so the sender's host sees a typed failure.
    PayNack {
        /// Channel.
        id: ChannelId,
        /// Amount to roll back.
        amount: u64,
        /// Batched count.
        count: u32,
        /// Refusal reason ([`ProtocolError::abort_code`](crate::types::ProtocolError::abort_code)).
        reason: u8,
    },
    /// Request cooperative (off-chain) termination (Alg. 1 line 108).
    SettleRequest {
        /// Channel.
        id: ChannelId,
    },
    /// Channel closed notification (Alg. 1 line 120).
    ChannelClosed {
        /// Channel.
        id: ChannelId,
    },

    // ---- Multi-hop payments (Alg. 2) ----
    /// Stage 1: lock (forward).
    MhLock(MhLock),
    /// Stage 2: sign τ (backward); τ accumulates witnesses.
    MhSign {
        /// Route.
        route: RouteId,
        /// τ with signatures collected so far.
        tau: Transaction,
        /// Complete digest map (filled at pn).
        digests: Vec<SettleDigest>,
        /// Committee metadata of every deposit τ spends.
        deposits: Vec<Deposit>,
    },
    /// Stage 3: distribute fully signed τ (forward).
    MhPreUpdate {
        /// Route.
        route: RouteId,
        /// Fully signed τ.
        tau: Transaction,
    },
    /// Stage 4: apply post-payment balances (backward).
    MhUpdate {
        /// Route.
        route: RouteId,
    },
    /// Stage 5: discard τ (forward).
    MhPostUpdate {
        /// Route.
        route: RouteId,
    },
    /// Stage 6: unlock (backward).
    MhRelease {
        /// Route.
        route: RouteId,
    },
    /// Lock failed downstream; unwind (backward) and unlock. Carries the
    /// refusing hop's failure reason ([`crate::types::ProtocolError::abort_code`])
    /// so the originator's operation completes with the *real* error
    /// instead of an anonymous failure.
    MhAbort {
        /// Route.
        route: RouteId,
        /// Failure reason wire code.
        reason: u8,
    },

    // ---- Replication (Alg. 3) and committees (§6.1) ----
    /// Backup assignment request (after attestation).
    RepAssign,
    /// Backup assignment accepted; carries the backup's blockchain key so
    /// upstream members can include it in deposit committees (§6.1).
    RepAssignAck {
        /// The backup's committee (blockchain) public key.
        member_key: PublicKey,
    },
    /// A state update propagating down the chain.
    RepUpdate {
        /// Update sequence number.
        seq: u64,
        /// The mutations.
        deltas: Vec<StateDelta>,
    },
    /// Acknowledgement that `seq` reached the chain tail.
    RepAck {
        /// Acknowledged sequence number.
        seq: u64,
    },
    /// Force-freeze: stop accepting updates (a backup was read, §6).
    RepFreeze,
    /// Request partial signatures over a settlement transaction.
    SigRequest {
        /// Request id (matches the response).
        req_id: u64,
        /// The transaction to co-sign.
        tx: Transaction,
    },
    /// Partial signatures from a committee member.
    SigResponse {
        /// Request id.
        req_id: u64,
        /// `(input index, signature)` pairs.
        sigs: Vec<(u32, Signature)>,
        /// True if the member refused (state mismatch — Byzantine guard).
        refused: bool,
    },

    // ---- Cross-chain atomic swaps (see `crate::swap`) ----
    /// Swap proposal from the initiator: trade `amount` of channel
    /// balance for `alt_amount` locked under `hash` on the other chain.
    SwapInit {
        /// Swap instance id.
        swap: SwapId,
        /// Channel whose balance is traded.
        channel: ChannelId,
        /// Channel amount (initiator → responder on redeem).
        amount: u64,
        /// Alternate-chain amount the responder must lock.
        alt_amount: u64,
        /// SHA-256 commitment to the initiator's secret.
        hash: [u8; 32],
        /// HTLC refund timelock in alternate-chain confirmations.
        timeout_blocks: u64,
    },
    /// Responder's HTLC is funded and confirmed on the alternate chain.
    SwapLocked {
        /// Swap instance id.
        swap: SwapId,
        /// The HTLC output.
        outpoint: OutPoint,
    },
    /// The secret, revealed after the initiator's claim is broadcast —
    /// the fast path for the responder's channel credit (the slow path
    /// extracts the preimage from the confirmed claim spend).
    SwapSecret {
        /// Swap instance id.
        swap: SwapId,
        /// The preimage of `hash`.
        secret: [u8; 32],
    },
    /// Swap refused or unilaterally aborted; carries the refusing side's
    /// [`ProtocolError::abort_code`](crate::types::ProtocolError::abort_code).
    SwapNack {
        /// Swap instance id.
        swap: SwapId,
        /// Failure reason wire code.
        reason: u8,
    },
}

macro_rules! tagged {
    ($out:ident, $tag:expr, $($v:expr),*) => {{
        ($tag as u8).encode($out);
        $($v.encode($out);)*
    }};
}

impl Encode for ProtocolMsg {
    fn encode(&self, out: &mut Vec<u8>) {
        use ProtocolMsg::*;
        match self {
            NewChannel { id, settlement } => tagged!(out, 0, id, settlement),
            NewChannelAck { id, settlement } => tagged!(out, 1, id, settlement),
            ApproveDeposit { deposit } => tagged!(out, 2, deposit),
            DepositApproved { outpoint } => tagged!(out, 3, outpoint),
            AssociateDeposit { id, deposit, key } => tagged!(out, 4, id, deposit, key),
            DissociateDeposit { id, outpoint } => tagged!(out, 5, id, outpoint),
            DissociateAck { id, outpoint } => tagged!(out, 6, id, outpoint),
            Pay { id, amount, count } => tagged!(out, 7, id, amount, count),
            PayAck { id, amount, count } => tagged!(out, 8, id, amount, count),
            SettleRequest { id } => tagged!(out, 9, id),
            ChannelClosed { id } => tagged!(out, 10, id),
            MhLock(m) => tagged!(out, 11, m),
            MhSign {
                route,
                tau,
                digests,
                deposits,
            } => tagged!(out, 12, route, tau, digests, deposits),
            MhPreUpdate { route, tau } => tagged!(out, 13, route, tau),
            MhUpdate { route } => tagged!(out, 14, route),
            MhPostUpdate { route } => tagged!(out, 15, route),
            MhRelease { route } => tagged!(out, 16, route),
            RepAssign => tagged!(out, 17,),
            RepAssignAck { member_key } => tagged!(out, 18, member_key),
            RepUpdate { seq, deltas } => tagged!(out, 19, seq, deltas),
            RepAck { seq } => tagged!(out, 20, seq),
            RepFreeze => tagged!(out, 21,),
            SigRequest { req_id, tx } => tagged!(out, 22, req_id, tx),
            SigResponse {
                req_id,
                sigs,
                refused,
            } => tagged!(out, 23, req_id, sigs, refused),
            PayNack {
                id,
                amount,
                count,
                reason,
            } => tagged!(out, 24, id, amount, count, reason),
            MhAbort { route, reason } => tagged!(out, 25, route, reason),
            SwapInit {
                swap,
                channel,
                amount,
                alt_amount,
                hash,
                timeout_blocks,
            } => tagged!(
                out,
                26,
                swap,
                channel,
                amount,
                alt_amount,
                hash,
                timeout_blocks
            ),
            SwapLocked { swap, outpoint } => tagged!(out, 27, swap, outpoint),
            SwapSecret { swap, secret } => tagged!(out, 28, swap, secret),
            SwapNack { swap, reason } => tagged!(out, 29, swap, reason),
        }
    }
}

impl Decode for ProtocolMsg {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        use ProtocolMsg::*;
        Ok(match r.read::<u8>()? {
            0 => NewChannel {
                id: r.read()?,
                settlement: r.read()?,
            },
            1 => NewChannelAck {
                id: r.read()?,
                settlement: r.read()?,
            },
            2 => ApproveDeposit { deposit: r.read()? },
            3 => DepositApproved {
                outpoint: r.read()?,
            },
            4 => AssociateDeposit {
                id: r.read()?,
                deposit: r.read()?,
                key: r.read()?,
            },
            5 => DissociateDeposit {
                id: r.read()?,
                outpoint: r.read()?,
            },
            6 => DissociateAck {
                id: r.read()?,
                outpoint: r.read()?,
            },
            7 => Pay {
                id: r.read()?,
                amount: r.read()?,
                count: r.read()?,
            },
            8 => PayAck {
                id: r.read()?,
                amount: r.read()?,
                count: r.read()?,
            },
            9 => SettleRequest { id: r.read()? },
            10 => ChannelClosed { id: r.read()? },
            11 => MhLock(r.read()?),
            12 => MhSign {
                route: r.read()?,
                tau: r.read()?,
                digests: r.read()?,
                deposits: r.read()?,
            },
            13 => MhPreUpdate {
                route: r.read()?,
                tau: r.read()?,
            },
            14 => MhUpdate { route: r.read()? },
            15 => MhPostUpdate { route: r.read()? },
            16 => MhRelease { route: r.read()? },
            17 => RepAssign,
            18 => RepAssignAck {
                member_key: r.read()?,
            },
            19 => RepUpdate {
                seq: r.read()?,
                deltas: r.read()?,
            },
            20 => RepAck { seq: r.read()? },
            21 => RepFreeze,
            22 => SigRequest {
                req_id: r.read()?,
                tx: r.read()?,
            },
            23 => SigResponse {
                req_id: r.read()?,
                sigs: r.read()?,
                refused: r.read()?,
            },
            24 => PayNack {
                id: r.read()?,
                amount: r.read()?,
                count: r.read()?,
                reason: r.read()?,
            },
            25 => MhAbort {
                route: r.read()?,
                reason: r.read()?,
            },
            26 => SwapInit {
                swap: r.read()?,
                channel: r.read()?,
                amount: r.read()?,
                alt_amount: r.read()?,
                hash: r.read()?,
                timeout_blocks: r.read()?,
            },
            27 => SwapLocked {
                swap: r.read()?,
                outpoint: r.read()?,
            },
            28 => SwapSecret {
                swap: r.read()?,
                secret: r.read()?,
            },
            29 => SwapNack {
                swap: r.read()?,
                reason: r.read()?,
            },
            _ => return Err(WireError::InvalidValue("protocol tag")),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use teechain_crypto::schnorr::Keypair;

    #[test]
    fn protocol_msg_roundtrip() {
        let id = ChannelId::from_label("c");
        let pk = Keypair::from_seed(&[1; 32]).pk;
        let msgs = vec![
            ProtocolMsg::NewChannel { id, settlement: pk },
            ProtocolMsg::Pay {
                id,
                amount: 42,
                count: 3,
            },
            ProtocolMsg::PayNack {
                id,
                amount: 42,
                count: 3,
                reason: 4,
            },
            ProtocolMsg::RepAck { seq: 7 },
            ProtocolMsg::MhUpdate {
                route: RouteId([9; 32]),
            },
            ProtocolMsg::RepAssign,
        ];
        for m in msgs {
            let bytes = m.encode_to_vec();
            let decoded = ProtocolMsg::decode_exact(&bytes).unwrap();
            // Spot-check via re-encoding (ProtocolMsg has no PartialEq on
            // purpose — transactions inside are compared by txid).
            assert_eq!(decoded.encode_to_vec(), bytes);
        }
    }

    #[test]
    fn junk_rejected() {
        assert!(ProtocolMsg::decode_exact(&[200]).is_err());
        assert!(WireMsg::decode_exact(&[9]).is_err());
    }

    #[test]
    fn wire_sealed_roundtrip() {
        let pk = Keypair::from_seed(&[2; 32]).pk;
        let m = WireMsg::Sealed {
            from: pk,
            seq: 5,
            class: 1,
            ct: vec![1, 2, 3],
        };
        let bytes = m.encode_to_vec();
        match WireMsg::decode_exact(&bytes).unwrap() {
            WireMsg::Sealed {
                from,
                seq,
                class,
                ct,
            } => {
                assert_eq!(from, pk);
                assert_eq!(seq, 5);
                assert_eq!(class, 1);
                assert_eq!(ct, vec![1, 2, 3]);
            }
            _ => panic!("wrong variant"),
        }
    }

    #[test]
    fn cost_class_mapping() {
        let id = ChannelId::from_label("c");
        assert_eq!(
            CostClass::of(&ProtocolMsg::Pay {
                id,
                amount: 1,
                count: 1
            }),
            CostClass::Payment
        );
        assert_eq!(
            CostClass::of(&ProtocolMsg::RepAck { seq: 1 }),
            CostClass::ReplicationAck
        );
        assert_eq!(
            CostClass::of(&ProtocolMsg::MhUpdate {
                route: RouteId([1; 32])
            }),
            CostClass::Multihop
        );
        assert_eq!(
            CostClass::of(&ProtocolMsg::SettleRequest { id }),
            CostClass::Control
        );
        assert_eq!(CostClass::from_byte(99), CostClass::Control);
    }
}
