//! In-enclave admission control: per-channel FIFO op queues + batching.
//!
//! When a channel is locked by an in-flight multihop, payments against it
//! used to be rejected with `ChannelLocked` and re-fired by a host timer —
//! a retry storm that dominated the scale benchmarks (~88k ChannelLocked
//! errors for 2k completed payments). Admission moves that wait into the
//! enclave: a locked channel enqueues the op on a bounded per-channel FIFO
//! and, at the unlock point, the queue is drained by *batching* N
//! consecutive same-channel payments into one staged delta — which the
//! enclave's single per-ecall `finalize` then commits with one monotonic
//! counter increment and one WAL record (the `persist` group-commit
//! framing), emitting one typed completion event per queued op.
//!
//! Queueing is the fallback, not the first move: a locked channel first
//! tries *lock-aware rerouting* — an unlocked parallel (temporary)
//! channel to the same peer with the balance carries the op immediately
//! (`TeechainEnclave::sibling_unlocked`). Three queue families live
//! here for what remains:
//!
//! * `queues`   — locally submitted ops (`cmd_pay`, `cmd_pay_multihop`)
//!   waiting for a locked channel. Drained on unlock; entries past their
//!   deadline are failed with `ChannelLocked`. A queued local op holds
//!   no locks, so its deadline is generous.
//! * `deferred` — decrypted inbound protocol messages (`Pay`, `MhLock`)
//!   that arrived while the target channel was locked. Deferring an
//!   `MhLock` is hold-and-wait (its upstream hops keep their channels
//!   locked), so it is admitted *wait-die* style: a route may only wait
//!   behind routes whose id orders above its own — wait-for edges point
//!   small→large, the graph stays acyclic, admission cannot deadlock.
//!   Losers abort backward at once; the origin re-queues the
//!   origination in-enclave with a short `ready_ns` backoff rather than
//!   surfacing `ChannelLocked`. Re-dispatched on unlock; expired
//!   entries are refused backward (`PayNack`/`MhAbort`) so the far
//!   side's op completes with a typed error instead of retrying blind.
//! * `inflight` — ack bookkeeping: one group per outbound wire `Pay`,
//!   listing the `(amount, count)` of every local op merged into it, so a
//!   single `PayAck`/`PayNack` fans back out to one event per op in
//!   submission order (the `OpTracker` matches per-channel FIFO).
//!
//! All of this state is volatile by design: it never enters the sealed
//! state image or the WAL. After a crash, queued-but-uncommitted ops are
//! simply gone — the host resolves them as dead (`Timeout`), and replay
//! reconstructs exactly the committed batches. That is what makes the
//! batch commit exactly-once: an op either made it into a sealed batch
//! record (and will be reapplied) or it never happened.

use crate::msg::ProtocolMsg;
use crate::types::ChannelId;
use std::collections::{BTreeMap, VecDeque};
use teechain_crypto::schnorr::PublicKey;

/// Max ops queued per channel before admission pushes back with
/// `ChannelLocked` (the only case left that surfaces it to a caller).
pub const ADMIT_QUEUE_CAP: usize = 1024;

/// How long a locally queued op may wait for the channel to unlock
/// before it is failed with `ChannelLocked` (30s of simulated/wall
/// time). A queued local op holds no locks while it waits, so the
/// deadline is generous: it only has to beat the caller's own patience,
/// not break deadlocks. Expiring early just bounces the op back to a
/// host-side retry — the exact storm admission exists to kill.
pub const ADMIT_DEADLINE_NS: u64 = 30_000_000_000;

/// How long a deferred *inbound* message (`Pay`, `MhLock`) may wait.
/// Deferral is hold-and-wait: the upstream hops of a deferred `MhLock`
/// keep their channels locked while we wait, so this deadline is what
/// breaks cross-route deadlock cycles. It must still cover a few
/// lock-hold generations (a multihop holds its channels for ~1–2s of
/// WAN round trips), or every entry that is not first in line expires
/// before its turn.
pub const DEFER_DEADLINE_NS: u64 = 10_000_000_000;

/// A locally submitted op parked behind a locked channel.
pub enum QueuedOp {
    /// Single-channel payment: amount and logical payment count.
    Pay { amount: u64, count: u32 },
    /// Multihop origination to re-run once our outgoing channel unlocks.
    Multihop {
        route: crate::types::RouteId,
        hops: Vec<PublicKey>,
        channels: Vec<ChannelId>,
        amount: u64,
    },
}

/// Queue entry: the op plus its admission deadline.
pub struct QueueEntry {
    pub op: QueuedOp,
    pub deadline_ns: u64,
    /// Earliest time the drain may run this entry (0 = immediately).
    /// Used for the in-enclave backoff of a multihop origination that
    /// was aborted downstream with `ChannelLocked` and re-queued here
    /// instead of surfacing the error.
    pub ready_ns: u64,
}

/// A decrypted inbound message parked behind a locked channel.
pub struct DeferredMsg {
    pub from: PublicKey,
    pub msg: ProtocolMsg,
    pub deadline_ns: u64,
}

/// Admission counters, surfaced to benches via
/// [`TeechainEnclave::admit_stats`](crate::enclave::TeechainEnclave::admit_stats).
#[derive(Clone, Default)]
pub struct AdmitStats {
    /// Local ops that entered a queue instead of erroring.
    pub enqueued: u64,
    /// Inbound messages deferred instead of nacked.
    pub deferred: u64,
    /// Drain batches committed (each = one WAL record).
    pub batches: u64,
    /// Total payments applied through batches.
    pub batched_payments: u64,
    /// Largest single batch.
    pub max_batch: u64,
    /// Entries failed at their deadline.
    pub expired: u64,
    /// Entries flushed by settle/eject/close.
    pub flushed: u64,
    /// Multihop originations re-queued in-enclave after a downstream
    /// `ChannelLocked` abort (the retry the host used to drive).
    pub requeued: u64,
    /// Ops carried by an unlocked parallel (temporary) channel to the
    /// same peer instead of waiting behind the locked one they named.
    pub rerouted: u64,
    /// Histogram of batch sizes: bucket i counts batches of size in
    /// `[2^i, 2^(i+1))`; the last bucket absorbs the tail.
    pub batch_hist: [u64; 16],
    /// Deepest any single local-op queue ever got (high-watermark).
    pub queue_depth_hwm: u64,
    /// Deepest any single defer queue ever got (high-watermark).
    pub defer_depth_hwm: u64,
    /// Longest a deferred inbound message waited before being
    /// re-dispatched or expired, in ns (high-watermark).
    pub defer_age_max_ns: u64,
}

impl AdmitStats {
    /// Records a committed drain batch of `n` payments.
    pub fn record_batch(&mut self, n: u64) {
        if n == 0 {
            return;
        }
        self.batches += 1;
        self.batched_payments += n;
        self.max_batch = self.max_batch.max(n);
        let bucket = (63 - n.leading_zeros()) as usize;
        self.batch_hist[bucket.min(self.batch_hist.len() - 1)] += 1;
    }

    /// Raises the local-op queue-depth high-watermark to `depth`.
    pub fn note_queue_depth(&mut self, depth: usize) {
        self.queue_depth_hwm = self.queue_depth_hwm.max(depth as u64);
    }

    /// Raises the defer queue-depth high-watermark to `depth`.
    pub fn note_defer_depth(&mut self, depth: usize) {
        self.defer_depth_hwm = self.defer_depth_hwm.max(depth as u64);
    }

    /// Raises the deferred-message age high-watermark to `age_ns`.
    pub fn note_defer_age(&mut self, age_ns: u64) {
        self.defer_age_max_ns = self.defer_age_max_ns.max(age_ns);
    }
}

/// One ack fan-out group: the local ops merged into a single outbound
/// wire `Pay`, in submission order. Each entry is
/// `(submitted_channel, amount, count)` — the channel the caller named,
/// which lock-aware selection may have swapped for an unlocked sibling
/// on the wire. The ack event carries the submitted id so the op
/// layer's correlation key still matches.
pub type AckGroup = Vec<(ChannelId, u64, u32)>;

/// Per-enclave admission state. Volatile: never sealed, never replayed.
///
/// The per-channel maps are `BTreeMap`s, not `HashMap`s: the admission
/// pump drains every backlogged channel in one ecall, and the order it
/// visits channels decides the order of the resulting wire sends. Map
/// iteration therefore has to be a pure function of the channel ids —
/// hash-order iteration leaks the hasher's random state into protocol
/// timing, which the cross-shard-count determinism suites catch.
#[derive(Default)]
pub struct AdmitState {
    /// Locally submitted ops waiting per channel, FIFO.
    pub queues: BTreeMap<ChannelId, VecDeque<QueueEntry>>,
    /// Deferred inbound messages per channel, FIFO.
    pub deferred: BTreeMap<ChannelId, VecDeque<DeferredMsg>>,
    /// Ack fan-out groups per *wire* channel: front group matches the
    /// oldest outstanding outbound wire `Pay`.
    pub inflight: BTreeMap<ChannelId, VecDeque<AckGroup>>,
    /// Counters for benches and tests.
    pub stats: AdmitStats,
}

impl AdmitState {
    /// Earliest future wake time across all queued and deferred entries,
    /// if any — the time the host should pump admission next. A queued
    /// entry still inside its backoff wakes at `ready_ns`; everything
    /// else wakes at its expiry deadline.
    pub fn next_deadline(&self, now: u64) -> Option<u64> {
        let q = self.queues.values().flat_map(|q| {
            q.iter().map(move |e| {
                if e.ready_ns > now {
                    e.ready_ns
                } else {
                    e.deadline_ns
                }
            })
        });
        let d = self
            .deferred
            .values()
            .flat_map(|q| q.iter().map(|e| e.deadline_ns));
        q.chain(d).min()
    }

    /// Total entries currently parked (queued + deferred).
    pub fn backlog(&self) -> usize {
        self.queues.values().map(|q| q.len()).sum::<usize>()
            + self.deferred.values().map(|q| q.len()).sum::<usize>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn batch_histogram_buckets_by_power_of_two() {
        let mut s = AdmitStats::default();
        s.record_batch(0); // ignored
        s.record_batch(1);
        s.record_batch(2);
        s.record_batch(3);
        s.record_batch(4);
        s.record_batch(1000);
        assert_eq!(s.batches, 5);
        assert_eq!(s.batched_payments, 1 + 2 + 3 + 4 + 1000);
        assert_eq!(s.max_batch, 1000);
        assert_eq!(s.batch_hist[0], 1); // 1
        assert_eq!(s.batch_hist[1], 2); // 2, 3
        assert_eq!(s.batch_hist[2], 1); // 4
        assert_eq!(s.batch_hist[9], 1); // 1000 ∈ [512, 1024)
    }

    #[test]
    fn next_deadline_scans_both_queue_families() {
        let mut a = AdmitState::default();
        assert_eq!(a.next_deadline(0), None);
        let c1 = ChannelId::from_label("admit-q1");
        let c2 = ChannelId::from_label("admit-q2");
        a.queues.entry(c1).or_default().push_back(QueueEntry {
            op: QueuedOp::Pay {
                amount: 5,
                count: 1,
            },
            deadline_ns: 900,
            ready_ns: 0,
        });
        a.deferred.entry(c2).or_default().push_back(DeferredMsg {
            from: teechain_crypto::schnorr::Keypair::from_seed(&[9u8; 32]).pk,
            msg: ProtocolMsg::PayAck {
                id: c2,
                amount: 1,
                count: 1,
            },
            deadline_ns: 400,
        });
        assert_eq!(a.next_deadline(0), Some(400));
        assert_eq!(a.backlog(), 2);
        // An entry inside its backoff wakes at ready_ns, not its expiry.
        a.queues.entry(c1).or_default().push_back(QueueEntry {
            op: QueuedOp::Pay {
                amount: 7,
                count: 1,
            },
            deadline_ns: 950,
            ready_ns: 120,
        });
        assert_eq!(a.next_deadline(100), Some(120));
        assert_eq!(a.next_deadline(130), Some(400));
    }
}
