//! Secure network channels between enclaves (Alg. 1, `newNetworkChannel`).
//!
//! The handshake performs mutual remote attestation and an authenticated
//! ephemeral Diffie-Hellman exchange. Each side proves: (i) it runs the
//! expected Teechain enclave build on a genuine TEE (the quote binds the
//! identity and ephemeral keys); and (ii) it owns its identity key and is
//! talking to the intended peer (the transcript signature covers both
//! identities), which prevents messages from being relayed between enclave
//! instances — the state-forking defence of §4.1.
//!
//! After the handshake, all traffic is AEAD-sealed under per-direction keys
//! with strictly increasing sequence numbers as nonces (freshness).

use crate::msg::{Handshake, ProtocolMsg, WireMsg};
use crate::types::ProtocolError;
use teechain_crypto::aead::Aead;
use teechain_crypto::ecdh;
use teechain_crypto::schnorr::{self, Keypair, PrivateKey, PublicKey};
use teechain_crypto::sha256::{hkdf, tagged_hash};
use teechain_tee::attest::report_data_from;
use teechain_tee::Quote;
use teechain_util::codec::{Decode, Encode};

/// An established (or half-open) secure session with a remote enclave.
pub struct Session {
    /// Remote enclave identity key.
    pub remote: PublicKey,
    send: Aead,
    recv: Aead,
    send_seq: u64,
    recv_seq: u64,
    /// True once the handshake completed.
    pub established: bool,
}

impl Session {
    /// Derives directional session keys from the DH secret. Both sides
    /// derive identical keys; direction is disambiguated by canonical key
    /// order so the two directions never share an AEAD nonce space.
    pub fn derive(secret: &[u8; 32], me: &PublicKey, remote: &PublicKey) -> Session {
        let (lo, hi) = if me.to_bytes() <= remote.to_bytes() {
            (me, remote)
        } else {
            (remote, me)
        };
        let mut info = Vec::with_capacity(128);
        info.extend_from_slice(&lo.to_bytes());
        info.extend_from_slice(&hi.to_bytes());
        let okm = hkdf(b"teechain-session-v2", secret, &info, 64);
        let key_lo_hi: [u8; 32] = okm[..32].try_into().unwrap();
        let key_hi_lo: [u8; 32] = okm[32..].try_into().unwrap();
        let i_am_lo = me.to_bytes() <= remote.to_bytes();
        let (send_key, recv_key) = if i_am_lo {
            (key_lo_hi, key_hi_lo)
        } else {
            (key_hi_lo, key_lo_hi)
        };
        Session {
            remote: *remote,
            send: Aead::new(&send_key),
            recv: Aead::new(&recv_key),
            send_seq: 0,
            recv_seq: 0,
            established: false,
        }
    }

    /// Seals a protocol message into a wire envelope.
    pub fn seal(&mut self, me: &PublicKey, msg: &ProtocolMsg) -> WireMsg {
        let seq = self.send_seq;
        self.send_seq += 1;
        let ct = self.send.seal(seq, &me.to_bytes(), &msg.encode_to_vec());
        WireMsg::Sealed {
            from: *me,
            seq,
            class: crate::msg::CostClass::of(msg) as u8,
            ct,
        }
    }

    /// Opens a sealed envelope, enforcing strict sequence ordering (replay,
    /// reorder and drop all surface as authentication failures).
    pub fn open(&mut self, seq: u64, ct: &[u8]) -> Result<ProtocolMsg, ProtocolError> {
        if seq != self.recv_seq {
            return Err(ProtocolError::BadMessage);
        }
        let plain = self
            .recv
            .open(seq, &self.remote.to_bytes(), ct)
            .map_err(|_| ProtocolError::BadMessage)?;
        let msg = ProtocolMsg::decode_exact(&plain).map_err(|_| ProtocolError::BadMessage)?;
        self.recv_seq += 1;
        Ok(msg)
    }
}

fn transcript_digest(role: &str, me: &PublicKey, eph: &PublicKey, peer: &PublicKey) -> [u8; 32] {
    tagged_hash(role, &[&me.to_bytes(), &eph.to_bytes(), &peer.to_bytes()])
}

fn quote_binding(identity: &PublicKey, eph: &PublicKey) -> [u8; 64] {
    report_data_from(&tagged_hash(
        "teechain/quote-binding",
        &[&identity.to_bytes(), &eph.to_bytes()],
    ))
}

/// Builds a handshake message (either direction).
pub fn make_handshake(
    role: &str,
    identity: &Keypair,
    eph: &Keypair,
    peer: &PublicKey,
    quote: Quote,
) -> Handshake {
    let digest = transcript_digest(role, &identity.pk, &eph.pk, peer);
    Handshake {
        identity: identity.pk,
        eph: eph.pk,
        quote,
        sig: identity.sign(&digest),
    }
}

/// Verifies a peer's handshake: attestation (root + measurement + binding)
/// and transcript signature. `me` is the verifier's identity (the signature
/// must name us as the intended peer).
pub fn verify_handshake(
    role: &str,
    hs: &Handshake,
    me: &PublicKey,
    trust_root: &PublicKey,
    expected_measurement: &teechain_tee::Measurement,
) -> Result<(), ProtocolError> {
    if !hs.quote.verify_for(trust_root, expected_measurement) {
        return Err(ProtocolError::AttestationFailed);
    }
    if hs.quote.report_data != quote_binding(&hs.identity, &hs.eph) {
        return Err(ProtocolError::AttestationFailed);
    }
    let digest = transcript_digest(role, &hs.identity, &hs.eph, me);
    if !schnorr::verify(&hs.identity, &digest, &hs.sig) {
        return Err(ProtocolError::AttestationFailed);
    }
    Ok(())
}

/// Computes the session secret from our ephemeral private key and the
/// peer's ephemeral public key.
pub fn session_secret(my_eph: &PrivateKey, peer_eph: &PublicKey) -> [u8; 32] {
    ecdh::shared_secret(my_eph, peer_eph)
}

/// The report data a handshake quote must carry for (identity, eph).
pub fn expected_quote_binding(identity: &PublicKey, eph: &PublicKey) -> [u8; 64] {
    quote_binding(identity, eph)
}

#[cfg(test)]
mod tests {
    use super::*;
    use teechain_tee::{Measurement, TrustRoot};

    const M: (&str, u32) = ("teechain", 1);

    fn quote_for(root: &TrustRoot, dev_seed: u64, identity: &Keypair, eph: &Keypair) -> Quote {
        let dev = root.issue_device(dev_seed);
        dev.quote(
            Measurement::of_program(M.0, M.1),
            expected_quote_binding(&identity.pk, &eph.pk),
        )
    }

    fn pair() -> (Keypair, Keypair, Keypair, Keypair, TrustRoot) {
        let a_id = Keypair::from_seed(&[1; 32]);
        let a_eph = Keypair::from_seed(&[2; 32]);
        let b_id = Keypair::from_seed(&[3; 32]);
        let b_eph = Keypair::from_seed(&[4; 32]);
        (a_id, a_eph, b_id, b_eph, TrustRoot::new(9))
    }

    #[test]
    fn handshake_verifies() {
        let (a_id, a_eph, b_id, _b_eph, root) = pair();
        let q = quote_for(&root, 1, &a_id, &a_eph);
        let hs = make_handshake("hello", &a_id, &a_eph, &b_id.pk, q);
        let m = Measurement::of_program(M.0, M.1);
        assert!(verify_handshake("hello", &hs, &b_id.pk, &root.public_key(), &m).is_ok());
        // Wrong intended peer: signature check fails.
        let c = Keypair::from_seed(&[7; 32]);
        assert_eq!(
            verify_handshake("hello", &hs, &c.pk, &root.public_key(), &m),
            Err(ProtocolError::AttestationFailed)
        );
        // Wrong role string: cross-protocol confusion rejected.
        assert_eq!(
            verify_handshake("hello-ack", &hs, &b_id.pk, &root.public_key(), &m),
            Err(ProtocolError::AttestationFailed)
        );
    }

    #[test]
    fn quote_must_bind_ephemeral() {
        let (a_id, a_eph, b_id, _b, root) = pair();
        // Quote binds a *different* ephemeral key (MitM key substitution).
        let evil_eph = Keypair::from_seed(&[99; 32]);
        let q = quote_for(&root, 1, &a_id, &evil_eph);
        let hs = make_handshake("hello", &a_id, &a_eph, &b_id.pk, q);
        let m = Measurement::of_program(M.0, M.1);
        assert_eq!(
            verify_handshake("hello", &hs, &b_id.pk, &root.public_key(), &m),
            Err(ProtocolError::AttestationFailed)
        );
    }

    #[test]
    fn sessions_agree_and_transfer() {
        let (a_id, a_eph, b_id, b_eph, _) = pair();
        let sa = session_secret(&a_eph.sk, &b_eph.pk);
        let sb = session_secret(&b_eph.sk, &a_eph.pk);
        assert_eq!(sa, sb);
        let mut alice = Session::derive(&sa, &a_id.pk, &b_id.pk);
        let mut bob = Session::derive(&sb, &b_id.pk, &a_id.pk);
        let msg = ProtocolMsg::RepAck { seq: 42 };
        let wire = alice.seal(&a_id.pk, &msg);
        let WireMsg::Sealed { seq, ct, .. } = wire else {
            panic!("expected sealed");
        };
        match bob.open(seq, &ct).unwrap() {
            ProtocolMsg::RepAck { seq: 42 } => {}
            _ => panic!("wrong message"),
        }
    }

    #[test]
    fn replay_rejected() {
        let (a_id, a_eph, b_id, b_eph, _) = pair();
        let secret = session_secret(&a_eph.sk, &b_eph.pk);
        let mut alice = Session::derive(&secret, &a_id.pk, &b_id.pk);
        let mut bob = Session::derive(&secret, &b_id.pk, &a_id.pk);
        let WireMsg::Sealed { seq, ct, .. } = alice.seal(&a_id.pk, &ProtocolMsg::RepAck { seq: 1 })
        else {
            panic!();
        };
        assert!(bob.open(seq, &ct).is_ok());
        // Replaying the same envelope fails the strict-ordering check.
        assert!(matches!(bob.open(seq, &ct), Err(ProtocolError::BadMessage)));
    }

    #[test]
    fn directions_use_distinct_keys() {
        let (a_id, a_eph, b_id, b_eph, _) = pair();
        let secret = session_secret(&a_eph.sk, &b_eph.pk);
        let mut alice = Session::derive(&secret, &a_id.pk, &b_id.pk);
        let mut bob = Session::derive(&secret, &b_id.pk, &a_id.pk);
        // A message sealed by Alice cannot be "reflected" back to her.
        let WireMsg::Sealed { seq, ct, .. } = alice.seal(&a_id.pk, &ProtocolMsg::RepAck { seq: 1 })
        else {
            panic!();
        };
        assert!(matches!(
            alice.open(seq, &ct),
            Err(ProtocolError::BadMessage)
        ));
        // But Bob reads it fine.
        assert!(bob.open(seq, &ct).is_ok());
    }

    #[test]
    fn tampered_ciphertext_rejected() {
        let (a_id, a_eph, b_id, b_eph, _) = pair();
        let secret = session_secret(&a_eph.sk, &b_eph.pk);
        let mut alice = Session::derive(&secret, &a_id.pk, &b_id.pk);
        let mut bob = Session::derive(&secret, &b_id.pk, &a_id.pk);
        let WireMsg::Sealed { seq, mut ct, .. } =
            alice.seal(&a_id.pk, &ProtocolMsg::RepAck { seq: 1 })
        else {
            panic!();
        };
        ct[0] ^= 1;
        assert!(matches!(bob.open(seq, &ct), Err(ProtocolError::BadMessage)));
    }
}
