//! The sharded live-node scheduler: thousands of unmodified
//! [`TeechainNode`]s sharing a fixed pool of worker threads.
//!
//! The per-node live runtime ([`crate::live`]) spends two OS threads per
//! node (event loop + transport pump), which caps a single box at
//! hundreds of nodes. This module replaces thread-per-node with
//! run-queues: every node becomes a [`Cell`] — an inbox, a ready flag
//! and the node state — and `W` workers pop ready nodes from one shared
//! run queue, drain a bounded batch of their inputs through the same
//! [`drive`] bridge the per-node loops use, and move on. Total thread
//! count is `W + 2` (workers + the reactor poller + one timer thread)
//! regardless of node count.
//!
//! Readiness has three sources, exactly the inputs a per-node loop
//! blocks on:
//!
//! * **Inbound messages** — the reactor transport runs in sink mode
//!   ([`ReactorNet::localhost_sink`]), so its poller enqueues frames
//!   straight into the destination cell's inbox and marks it ready. No
//!   pump threads.
//! * **Harness requests** — submissions, observability snapshots and
//!   dead-op resolution enter the same inbox, so they serialize with
//!   message handling per node (the single-event-loop invariant the
//!   protocol handlers assume).
//! * **Timers** — one *shared* wall-clock timer heap for the whole
//!   cluster, serviced by a dedicated thread that sleeps until the
//!   earliest deadline and re-enqueues the owning node when it fires —
//!   the live analogue of the engine's global timer queue, and O(1)
//!   threads where the per-node runtime kept a heap per loop.
//!
//! Exclusivity: a cell's `queued` flag guarantees a node is in the run
//! queue at most once, and its state mutex guarantees at most one worker
//! drives it at a time — together they preserve per-node handler
//! serialization while different nodes run genuinely in parallel. The
//! flag is cleared *before* re-checking the inbox so a racing enqueue
//! can never strand input (the re-check re-queues, possibly spuriously,
//! never silently drops).

use crate::live::{Input, LiveConfig, LiveReq};
use crate::node::TeechainNode;
use crate::ops::Completion;
use parking_lot::Mutex as PlMutex;
use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};
use teechain_net::live::drive;
use teechain_net::live::reactor::{ReactorHandle, ReactorNet, ReactorTx, POOL};
use teechain_net::{NodeAction, NodeId, TransportTx};
use teechain_util::rng::Xoshiro256;

/// Most inputs one scheduling turn drains from a node's inbox before
/// the worker re-queues it and moves on — keeps one chatty node from
/// starving the rest of its shard.
const TURN_BUDGET: usize = 64;

/// Longest the timer thread sleeps with an empty heap (a new timer
/// notifies it immediately; this only bounds stop-flag latency).
const TIMER_IDLE: Duration = Duration::from_millis(25);

/// One node's scheduling state.
struct Cell {
    /// Unified input queue (network frames, harness requests, timer
    /// fires) — the run-queue analogue of the per-node loop's mpsc.
    inbox: Mutex<VecDeque<Input>>,
    /// True while the node is in the run queue (or being drained):
    /// guarantees at most one run-queue entry per node.
    queued: AtomicBool,
    /// The node itself plus its transport sender and RNG lane. `None`
    /// only after shutdown extracts the node.
    state: Mutex<Option<NodeState>>,
    /// Published completion stream (shared with the harness).
    done: Arc<PlMutex<Vec<Completion>>>,
}

/// The mutable per-node state a worker owns while driving the node.
struct NodeState {
    node: TeechainNode,
    tx: ReactorTx,
    rng: Xoshiro256,
    sent_msgs: u64,
    sent_bytes: u64,
}

/// State shared by workers, the timer thread and the reactor sink.
struct Shared {
    cells: Vec<Cell>,
    /// Ready nodes, FIFO. Workers block on `runq_cv` when it is empty.
    runq: Mutex<VecDeque<u32>>,
    runq_cv: Condvar,
    /// The cluster-wide wall-clock timer heap:
    /// `Reverse((fire_at_ns, node, token))`.
    timers: Mutex<BinaryHeap<Reverse<(u64, u32, u64)>>>,
    timer_cv: Condvar,
    stop: AtomicBool,
    epoch: Instant,
}

impl Shared {
    fn now_ns(&self) -> u64 {
        self.epoch.elapsed().as_nanos() as u64
    }

    /// Queues `input` for `node` and marks it ready.
    fn enqueue(&self, node: usize, input: Input) {
        self.cells[node]
            .inbox
            .lock()
            .expect("inbox")
            .push_back(input);
        self.mark_ready(node);
    }

    /// Puts `node` on the run queue unless it is already there.
    fn mark_ready(&self, node: usize) {
        if !self.cells[node].queued.swap(true, Ordering::AcqRel) {
            self.runq.lock().expect("run queue").push_back(node as u32);
            self.runq_cv.notify_one();
        }
    }

    /// One worker's scheduling turn on `node`: drain up to
    /// [`TURN_BUDGET`] inputs, then yield the node back.
    fn run_node(&self, node: usize) {
        let cell = &self.cells[node];
        {
            let mut slot = cell.state.lock().expect("node state");
            if let Some(st) = slot.as_mut() {
                for _ in 0..TURN_BUDGET {
                    let Some(input) = cell.inbox.lock().expect("inbox").pop_front() else {
                        break;
                    };
                    self.dispatch(node, st, input);
                }
            }
        }
        // Clear-then-recheck: an enqueue racing this clear either saw
        // `queued == true` (we re-queue below) or set it itself.
        cell.queued.store(false, Ordering::Release);
        if !cell.inbox.lock().expect("inbox").is_empty() {
            self.mark_ready(node);
        }
    }

    /// Executes one input on the node through the [`drive`] bridge and
    /// performs the emitted actions (real sends, shared-heap timers).
    fn dispatch(&self, node: usize, st: &mut NodeState, input: Input) {
        let now = self.now_ns();
        let id = NodeId(node as u32);
        let actions = match input {
            Input::Net(from, msg) => {
                let ((), actions) = drive(&mut st.node, id, now, &mut st.rng, |n, ctx| {
                    n.handle_wire(ctx, from, msg)
                });
                actions
            }
            Input::TimerFired(token) => {
                let ((), actions) = drive(&mut st.node, id, now, &mut st.rng, |n, ctx| {
                    n.handle_timer(ctx, token)
                });
                actions
            }
            Input::Req(req) => match req {
                LiveReq::Submit {
                    cmd,
                    deadline_ns,
                    reply,
                } => {
                    let (op, actions) = drive(&mut st.node, id, now, &mut st.rng, |n, ctx| {
                        n.submit_op(ctx, cmd, deadline_ns)
                    });
                    let _ = reply.send(op);
                    actions
                }
                LiveReq::OpenChannel {
                    id: chan,
                    remote,
                    reply,
                } => {
                    let (op, actions) = drive(&mut st.node, id, now, &mut st.rng, |n, ctx| {
                        n.submit_open_channel(ctx, chan, remote)
                    });
                    let _ = reply.send(op);
                    actions
                }
                LiveReq::FundDeposit { value, m, reply } => {
                    let (op, actions) = drive(&mut st.node, id, now, &mut st.rng, |n, ctx| {
                        n.submit_fund_deposit(ctx, value, m)
                    });
                    let _ = reply.send(op);
                    actions
                }
                LiveReq::ResolveDead { op, reply } => {
                    let resolved = st.node.resolve_dead_op(op, now).is_some();
                    let _ = reply.send(resolved);
                    Vec::new()
                }
                LiveReq::Observe { reply } => {
                    let mut reg = st.node.registry();
                    reg.counter("live.sent_msgs", st.sent_msgs);
                    reg.counter("live.sent_bytes", st.sent_bytes);
                    let _ = reply.send(reg);
                    Vec::new()
                }
                LiveReq::DrainTrace { reply } => {
                    let _ = reply.send(st.node.tracer.drain());
                    Vec::new()
                }
                // Sched shutdown happens through the stop flag, not a
                // per-node request; a stray one is a no-op.
                LiveReq::Shutdown => Vec::new(),
            },
        };
        for action in actions {
            match action {
                NodeAction::Send { to, msg } => {
                    st.sent_msgs += 1;
                    st.sent_bytes += msg.len() as u64;
                    // Backpressure from the reactor's bounded command
                    // queue blocks this worker — the live analogue of a
                    // full NIC queue. Dead-peer errors drop traffic like
                    // the simulator's offline handling.
                    let _ = st.tx.send(to, msg);
                }
                NodeAction::Timer { delay_ns, token } => {
                    self.timers.lock().expect("timer heap").push(Reverse((
                        now + delay_ns,
                        node as u32,
                        token,
                    )));
                    self.timer_cv.notify_one();
                }
                NodeAction::Busy { .. } => {}
            }
        }
        let fresh = std::mem::take(&mut st.node.completions);
        if !fresh.is_empty() {
            self.cells[node].done.lock().extend(fresh);
        }
        st.node.events.clear();
    }

    /// Worker thread body: pop ready nodes until stop.
    fn worker(&self) {
        loop {
            let node = {
                let mut q = self.runq.lock().expect("run queue");
                loop {
                    if self.stop.load(Ordering::Relaxed) {
                        return;
                    }
                    if let Some(n) = q.pop_front() {
                        break n as usize;
                    }
                    q = self.runq_cv.wait(q).expect("run queue wait");
                }
            };
            self.run_node(node);
        }
    }

    /// Timer thread body: fire due timers by re-enqueuing their nodes,
    /// sleep until the next deadline (or a new, earlier timer arrives).
    fn timer_loop(&self) {
        let mut due: Vec<(u32, u64)> = Vec::new();
        loop {
            {
                let mut heap = self.timers.lock().expect("timer heap");
                if self.stop.load(Ordering::Relaxed) {
                    return;
                }
                let now = self.now_ns();
                while let Some(&Reverse((at, node, token))) = heap.peek() {
                    if at > now {
                        break;
                    }
                    heap.pop();
                    due.push((node, token));
                }
                if due.is_empty() {
                    let wait = heap
                        .peek()
                        .map(|&Reverse((at, _, _))| Duration::from_nanos(at.saturating_sub(now)))
                        .unwrap_or(TIMER_IDLE)
                        .min(TIMER_IDLE);
                    let (h, _timeout) = self.timer_cv.wait_timeout(heap, wait).expect("timer wait");
                    drop(h);
                }
            }
            for (node, token) in due.drain(..) {
                self.enqueue(node as usize, Input::TimerFired(token));
            }
        }
    }
}

/// The running scheduler: owns the worker pool, the timer thread and
/// the reactor poller. Built by [`Sched::launch`], torn down by
/// [`Sched::shutdown`].
pub(crate) struct Sched {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
    timer: Option<JoinHandle<()>>,
    reactor: Option<ReactorHandle>,
    /// Worker-pool size actually launched (after the `0 = auto`
    /// default resolution).
    pub(crate) worker_count: usize,
}

impl Sched {
    /// Launches the scheduler: builds the sink-mode reactor net, seats
    /// every node in a cell, and starts `W` workers plus the timer
    /// thread. `cfg.workers == 0` resolves to the host's available
    /// parallelism.
    pub(crate) fn launch(
        cfg: &LiveConfig,
        nodes: Vec<TeechainNode>,
        epoch: Instant,
    ) -> std::io::Result<Sched> {
        let n = nodes.len();
        let workers = if cfg.workers == 0 {
            std::thread::available_parallelism().map_or(1, |p| p.get())
        } else {
            cfg.workers
        };
        let shared = Arc::new(Shared {
            cells: (0..n)
                .map(|_| Cell {
                    inbox: Mutex::new(VecDeque::new()),
                    queued: AtomicBool::new(false),
                    state: Mutex::new(None),
                    done: Arc::new(PlMutex::new(Vec::new())),
                })
                .collect(),
            runq: Mutex::new(VecDeque::new()),
            runq_cv: Condvar::new(),
            timers: Mutex::new(BinaryHeap::new()),
            timer_cv: Condvar::new(),
            stop: AtomicBool::new(false),
            epoch,
        });
        // The reactor delivers inbound frames straight into cell
        // inboxes from its poller thread — readiness without pumps.
        let sink_shared = shared.clone();
        let (txs, reactor) = ReactorNet::localhost_sink(
            n,
            POOL,
            Box::new(move |to, from, payload| {
                sink_shared.enqueue(to.0 as usize, Input::Net(from, payload));
            }),
        )?;
        // Seat the nodes before any worker runs: a cell whose state is
        // `None` would drop its turn on the floor.
        for ((i, mut node), tx) in nodes.into_iter().enumerate().zip(txs) {
            if cfg.tracing {
                node.tracer.configure(true, None);
            }
            *shared.cells[i].state.lock().expect("node state") = Some(NodeState {
                node,
                tx,
                rng: Xoshiro256::new(cfg.seed ^ (0x11FE << 16) ^ i as u64),
                sent_msgs: 0,
                sent_bytes: 0,
            });
        }
        let worker_handles = (0..workers)
            .map(|w| {
                let shared = shared.clone();
                std::thread::Builder::new()
                    .name(format!("teechain-sched-w{w}"))
                    .spawn(move || shared.worker())
                    .expect("spawn scheduler worker")
            })
            .collect();
        let timer_shared = shared.clone();
        let timer = std::thread::Builder::new()
            .name("teechain-sched-timer".into())
            .spawn(move || timer_shared.timer_loop())
            .expect("spawn scheduler timer");
        Ok(Sched {
            shared,
            workers: worker_handles,
            timer: Some(timer),
            reactor: Some(reactor),
            worker_count: workers,
        })
    }

    /// Queues an input for `node` and marks it ready.
    pub(crate) fn enqueue(&self, node: usize, input: Input) {
        self.shared.enqueue(node, input);
    }

    /// The per-node published completion streams (shared handles).
    pub(crate) fn completion_handles(&self) -> Vec<Arc<PlMutex<Vec<Completion>>>> {
        self.shared.cells.iter().map(|c| c.done.clone()).collect()
    }

    /// Stops workers, timer and poller, joins them all, and returns the
    /// final nodes in id order.
    pub(crate) fn shutdown(mut self) -> Vec<TeechainNode> {
        self.shared.stop.store(true, Ordering::Relaxed);
        self.shared.runq_cv.notify_all();
        self.shared.timer_cv.notify_all();
        for w in self.workers.drain(..) {
            w.join().expect("scheduler worker panicked");
        }
        if let Some(t) = self.timer.take() {
            t.join().expect("scheduler timer panicked");
        }
        if let Some(r) = self.reactor.take() {
            r.shutdown();
        }
        self.shared
            .cells
            .iter()
            .map(|cell| {
                cell.state
                    .lock()
                    .expect("node state")
                    .take()
                    .expect("node already extracted")
                    .node
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use crate::enclave::Command;
    use crate::live::{LiveBackend, LiveCluster, LiveConfig};
    use crate::ops::OpError;
    use crate::types::ProtocolError;

    #[test]
    fn sharded_payment_over_reactor() {
        let net = LiveCluster::over_reactor(LiveConfig {
            n: 2,
            workers: 2,
            ..LiveConfig::default()
        })
        .expect("bind reactor listener");
        let chan = net.standard_channel(0, 1, "sched-unit", 1_000, 1);
        let receipt = net.pay(0, chan, 250).expect("payment completes");
        assert_eq!(receipt.amount, 250);
        let err = net.pay(0, chan, 10_000).expect_err("overspend refused");
        assert_eq!(err, OpError::Rejected(ProtocolError::InsufficientBalance));
        let nodes = net.shutdown();
        let c = nodes[0]
            .enclave
            .program()
            .and_then(|p| p.channel(&chan))
            .expect("channel exists");
        assert_eq!((c.my_bal, c.remote_bal), (750, 250));
    }

    #[test]
    fn sharded_identities_match_per_node_backends() {
        let sharded = LiveCluster::over_reactor(LiveConfig {
            n: 3,
            seed: 42,
            ..LiveConfig::default()
        })
        .expect("bind reactor listener");
        let threads = LiveCluster::over_threads(LiveConfig {
            n: 3,
            seed: 42,
            ..LiveConfig::default()
        });
        assert_eq!(sharded.ids, threads.ids);
        threads.shutdown();
        sharded.shutdown();
    }

    #[test]
    fn thread_count_is_constant_in_cluster_size() {
        let small = LiveCluster::over(
            LiveBackend::Reactor,
            LiveConfig {
                n: 4,
                workers: 2,
                ..LiveConfig::default()
            },
        )
        .expect("bind reactor listener");
        let big = LiveCluster::over(
            LiveBackend::Reactor,
            LiveConfig {
                n: 64,
                workers: 2,
                ..LiveConfig::default()
            },
        )
        .expect("bind reactor listener");
        // Workers + poller + timer, independent of n — the property that
        // lets the reactor backend host thousands of nodes.
        assert_eq!(small.runtime_threads(), 4);
        assert_eq!(big.runtime_threads(), 4);
        // The per-node runtime spends two threads per node.
        let per_node = LiveCluster::over_threads(LiveConfig {
            n: 4,
            ..LiveConfig::default()
        });
        assert_eq!(per_node.runtime_threads(), 8);
        per_node.shutdown();
        big.shutdown();
        small.shutdown();
    }

    #[test]
    fn deadline_timers_fire_through_the_shared_heap() {
        let net = LiveCluster::over_reactor(LiveConfig {
            n: 2,
            workers: 1,
            ..LiveConfig::default()
        })
        .expect("bind reactor listener");
        // An op whose deadline is already in the past dies on the shared
        // timer heap (or legitimately wins the race on a fast box).
        let op = net.submit_with_deadline(0, Command::StartSession { remote: net.ids[1] }, 1);
        let res = net.wait::<teechain_crypto::schnorr::PublicKey>(
            crate::ops::Pending::new(op),
            std::time::Duration::from_secs(5),
        );
        match res {
            Err(OpError::Timeout { .. }) | Ok(_) => {}
            other => panic!("unexpected outcome: {other:?}"),
        }
        assert_eq!(
            net.completions(0).iter().filter(|c| c.op == op).count(),
            1,
            "exactly one completion"
        );
        net.shutdown();
    }

    #[test]
    fn multihop_payment_crosses_the_scheduler() {
        let net = LiveCluster::over_reactor(LiveConfig {
            n: 3,
            workers: 2,
            ..LiveConfig::default()
        })
        .expect("bind reactor listener");
        let ab = net.standard_channel(0, 1, "sched-ab", 10_000, 1);
        let bc = net.standard_channel(1, 2, "sched-bc", 10_000, 1);
        let delivered = net
            .pay_multihop(&[0, 1, 2], &[ab, bc], 700, "sched-route")
            .expect("multihop completes");
        assert_eq!(delivered.amount, 700);
        net.shutdown();
    }
}
