//! Payment channel state (Alg. 1's per-channel variables).

use crate::types::{ChannelId, MultihopStage, RouteId};
use teechain_blockchain::OutPoint;
use teechain_crypto::schnorr::PublicKey;
use teechain_util::codec::{Decode, Encode, Reader, WireError};

/// The state of one bidirectional payment channel, as held inside a TEE.
#[derive(Debug, Clone)]
pub struct Channel {
    /// Channel identifier.
    pub id: ChannelId,
    /// Remote TEE identity key (`c_remote_K`).
    pub remote: PublicKey,
    /// Our on-chain settlement address (`c_my_add`).
    pub my_settlement: PublicKey,
    /// Remote's settlement address (`c_remote_add`).
    pub remote_settlement: PublicKey,
    /// `c_is_open`: both sides acknowledged.
    pub is_open: bool,
    /// Our balance (`c_my_bal`).
    pub my_bal: u64,
    /// Remote balance (`c_remote_bal`).
    pub remote_bal: u64,
    /// Our associated deposits (`c_my_deps`), sorted.
    pub my_deps: Vec<OutPoint>,
    /// Remote associated deposits (`c_remote_deps`), sorted.
    pub remote_deps: Vec<OutPoint>,
    /// Multi-hop stage of this channel (Alg. 2's `c_stage`).
    pub stage: MultihopStage,
    /// The in-flight route locking this channel, if any.
    pub route: Option<RouteId>,
    /// Deposits we proposed to dissociate and await the remote's ack for.
    pub pending_dissoc: Vec<OutPoint>,
    /// True once settled/closed (terminal).
    pub closed: bool,
    /// True while we (as initiator) are driving a cooperative off-chain
    /// settlement: once every deposit on both sides has dissociated, the
    /// enclave emits the terminal `SettledOffChain` notification that
    /// resolves the initiator's settle operation.
    pub settling: bool,
}

impl Channel {
    /// Creates a fresh, not-yet-open channel.
    pub fn new(
        id: ChannelId,
        remote: PublicKey,
        my_settlement: PublicKey,
        remote_settlement: PublicKey,
    ) -> Self {
        Channel {
            id,
            remote,
            my_settlement,
            remote_settlement,
            is_open: false,
            my_bal: 0,
            remote_bal: 0,
            my_deps: Vec::new(),
            remote_deps: Vec::new(),
            stage: MultihopStage::Idle,
            route: None,
            pending_dissoc: Vec::new(),
            closed: false,
            settling: false,
        }
    }

    /// True if the channel can process payments and deposit operations.
    pub fn usable(&self) -> bool {
        self.is_open && !self.closed
    }

    /// True if a multi-hop payment currently locks this channel.
    pub fn locked(&self) -> bool {
        self.stage != MultihopStage::Idle
    }

    /// Total value of all associated deposits, by the invariant
    /// `my_bal + remote_bal == Σ deposits` (Proposition 2 of the paper's
    /// proof, maintained by construction here).
    pub fn total_balance(&self) -> u64 {
        self.my_bal + self.remote_bal
    }

    /// All deposit outpoints in deterministic order (ours then remote's).
    pub fn all_deposits(&self) -> Vec<OutPoint> {
        let mut all: Vec<OutPoint> = self
            .my_deps
            .iter()
            .chain(self.remote_deps.iter())
            .copied()
            .collect();
        all.sort();
        all
    }

    /// The view of this channel from the remote's perspective (used by
    /// committee members replicating a peer's state in tests).
    pub fn flipped(&self) -> Channel {
        Channel {
            id: self.id,
            remote: self.remote, // Identity of the counterparty is contextual.
            my_settlement: self.remote_settlement,
            remote_settlement: self.my_settlement,
            is_open: self.is_open,
            my_bal: self.remote_bal,
            remote_bal: self.my_bal,
            my_deps: self.remote_deps.clone(),
            remote_deps: self.my_deps.clone(),
            stage: self.stage,
            route: self.route,
            pending_dissoc: Vec::new(),
            closed: self.closed,
            settling: false,
        }
    }
}

// Wire form: `route: Option<RouteId>` and `stage` included so replicas see
// multi-hop context; `pending_dissoc` included for exact failover.
impl Encode for Channel {
    fn encode(&self, out: &mut Vec<u8>) {
        self.id.encode(out);
        self.remote.encode(out);
        self.my_settlement.encode(out);
        self.remote_settlement.encode(out);
        self.is_open.encode(out);
        self.my_bal.encode(out);
        self.remote_bal.encode(out);
        self.my_deps.encode(out);
        self.remote_deps.encode(out);
        self.stage.encode(out);
        self.route.encode(out);
        self.pending_dissoc.encode(out);
        self.closed.encode(out);
        self.settling.encode(out);
    }
}

impl Decode for Channel {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(Channel {
            id: r.read()?,
            remote: r.read()?,
            my_settlement: r.read()?,
            remote_settlement: r.read()?,
            is_open: r.read()?,
            my_bal: r.read()?,
            remote_bal: r.read()?,
            my_deps: r.read()?,
            remote_deps: r.read()?,
            stage: r.read()?,
            route: r.read()?,
            pending_dissoc: r.read()?,
            closed: r.read()?,
            settling: r.read()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use teechain_blockchain::TxId;
    use teechain_crypto::schnorr::Keypair;

    fn chan() -> Channel {
        let r = Keypair::from_seed(&[1; 32]).pk;
        let a = Keypair::from_seed(&[2; 32]).pk;
        let b = Keypair::from_seed(&[3; 32]).pk;
        Channel::new(ChannelId::from_label("t"), r, a, b)
    }

    fn op(n: u8) -> OutPoint {
        OutPoint {
            txid: TxId([n; 32]),
            vout: 0,
        }
    }

    #[test]
    fn fresh_channel_not_usable() {
        let c = chan();
        assert!(!c.usable());
        assert!(!c.locked());
        assert_eq!(c.total_balance(), 0);
    }

    #[test]
    fn deposits_sorted_deterministically() {
        let mut c = chan();
        c.my_deps = vec![op(9), op(1)];
        c.remote_deps = vec![op(5)];
        let all = c.all_deposits();
        assert_eq!(all, vec![op(1), op(5), op(9)]);
    }

    #[test]
    fn flipped_swaps_perspective() {
        let mut c = chan();
        c.my_bal = 10;
        c.remote_bal = 20;
        c.my_deps = vec![op(1)];
        let f = c.flipped();
        assert_eq!(f.my_bal, 20);
        assert_eq!(f.remote_bal, 10);
        assert_eq!(f.remote_deps, vec![op(1)]);
    }

    #[test]
    fn codec_roundtrip() {
        let mut c = chan();
        c.my_bal = 7;
        c.stage = MultihopStage::Lock;
        c.route = Some(RouteId([4; 32]));
        c.my_deps = vec![op(2)];
        let d = Channel::decode_exact(&c.encode_to_vec()).unwrap();
        assert_eq!(d.my_bal, 7);
        assert_eq!(d.stage, MultihopStage::Lock);
        assert_eq!(d.route, Some(RouteId([4; 32])));
        assert_eq!(d.my_deps, vec![op(2)]);
    }
}
