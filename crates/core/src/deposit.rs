//! Deposit bookkeeping (Alg. 1's `allDeps`, `freeDeps`, `appDeps`,
//! `btcPrivs`).

use crate::types::{Deposit, ProtocolError};
use std::collections::{HashMap, HashSet};
use teechain_blockchain::OutPoint;
use teechain_crypto::schnorr::{PrivateKey, PublicKey};

/// Where a deposit currently is in its lifecycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DepositStatus {
    /// Known, unassociated, spendable by release (`freeDeps`).
    Free,
    /// Associated with a channel.
    Associated(crate::types::ChannelId),
    /// Released or spent; kept for audit.
    Spent,
}

/// All deposit state held by one enclave.
#[derive(Default)]
pub struct DepositBook {
    /// Every deposit we own (`allDeps`), with status.
    pub mine: HashMap<OutPoint, (Deposit, DepositStatus)>,
    /// Deposits owned by remote parties that we know of (via approval
    /// requests and associations).
    pub remote: HashMap<OutPoint, Deposit>,
    /// Blockchain private keys we hold (`btcPrivs`), by public key.
    pub keys: HashMap<PublicKey, PrivateKey>,
    /// Our deposits approved by a given remote (`appDeps` seen from the
    /// owner side): set of (remote identity, outpoint).
    pub approved_by: HashSet<(PublicKey, OutPoint)>,
    /// Remote deposits we have approved (`appDeps` at the verifier).
    pub i_approved: HashSet<(PublicKey, OutPoint)>,
}

impl DepositBook {
    /// Registers a private key; returns its public key.
    pub fn insert_key(&mut self, sk: PrivateKey) -> PublicKey {
        let pk = sk.public_key();
        self.keys.insert(pk, sk);
        pk
    }

    /// Adds a new owned deposit (Alg. 1 `newDeposit`). The enclave must
    /// hold the key for the first committee slot (our slot).
    pub fn add_mine(&mut self, dep: Deposit) -> Result<(), ProtocolError> {
        if self.mine.contains_key(&dep.outpoint) {
            return Err(ProtocolError::BadDeposit); // Same deposit twice.
        }
        let our_key = dep
            .committee
            .member_keys
            .first()
            .ok_or(ProtocolError::BadDeposit)?;
        if !self.keys.contains_key(our_key) {
            return Err(ProtocolError::BadDeposit);
        }
        self.mine.insert(dep.outpoint, (dep, DepositStatus::Free));
        Ok(())
    }

    /// Looks up an owned deposit.
    pub fn get_mine(&self, op: &OutPoint) -> Option<&(Deposit, DepositStatus)> {
        self.mine.get(op)
    }

    /// Requires an owned deposit to be free; returns it.
    pub fn require_free(&self, op: &OutPoint) -> Result<&Deposit, ProtocolError> {
        match self.mine.get(op) {
            Some((dep, DepositStatus::Free)) => Ok(dep),
            _ => Err(ProtocolError::BadDeposit),
        }
    }

    /// Transitions an owned deposit's status.
    pub fn set_status(&mut self, op: &OutPoint, status: DepositStatus) {
        if let Some(entry) = self.mine.get_mut(op) {
            entry.1 = status;
        }
    }

    /// Records that `remote` approved our deposit `op`.
    pub fn mark_approved_by(&mut self, remote: PublicKey, op: OutPoint) {
        self.approved_by.insert((remote, op));
    }

    /// True if `remote` approved our deposit `op` (precondition for
    /// association, Alg. 1 line 66).
    pub fn is_approved_by(&self, remote: &PublicKey, op: &OutPoint) -> bool {
        self.approved_by.contains(&(*remote, *op))
    }

    /// Records our approval of a remote deposit.
    pub fn approve_remote(&mut self, remote: PublicKey, dep: Deposit) {
        self.i_approved.insert((remote, dep.outpoint));
        self.remote.insert(dep.outpoint, dep);
    }

    /// True if we approved remote deposit `op` from `remote`.
    pub fn did_approve(&self, remote: &PublicKey, op: &OutPoint) -> bool {
        self.i_approved.contains(&(*remote, *op))
    }

    /// The value of a known (owned or remote) deposit.
    pub fn value_of(&self, op: &OutPoint) -> Option<u64> {
        self.mine
            .get(op)
            .map(|(d, _)| d.value)
            .or_else(|| self.remote.get(op).map(|d| d.value))
    }

    /// The full record of a known deposit.
    pub fn deposit_of(&self, op: &OutPoint) -> Option<&Deposit> {
        self.mine
            .get(op)
            .map(|(d, _)| d)
            .or_else(|| self.remote.get(op))
    }

    /// Drops a key (Alg. 1 line 104: destroy the copy after dissociation).
    pub fn destroy_key(&mut self, pk: &PublicKey) {
        self.keys.remove(pk);
    }

    /// All free owned deposits (for release on freeze/settle-all).
    pub fn free_deposits(&self) -> Vec<Deposit> {
        self.mine
            .values()
            .filter(|(_, s)| *s == DepositStatus::Free)
            .map(|(d, _)| d.clone())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::{ChannelId, CommitteeSpec};
    use teechain_blockchain::TxId;
    use teechain_crypto::schnorr::Keypair;

    fn op(n: u8) -> OutPoint {
        OutPoint {
            txid: TxId([n; 32]),
            vout: 0,
        }
    }

    fn dep(book: &mut DepositBook, n: u8, value: u64) -> Deposit {
        let kp = Keypair::from_seed(&[n; 32]);
        let pk = book.insert_key(kp.sk);
        Deposit {
            outpoint: op(n),
            value,
            committee: CommitteeSpec::single(pk),
        }
    }

    #[test]
    fn add_and_release_lifecycle() {
        let mut book = DepositBook::default();
        let d = dep(&mut book, 1, 100);
        book.add_mine(d.clone()).unwrap();
        assert!(book.require_free(&op(1)).is_ok());
        book.set_status(
            &op(1),
            DepositStatus::Associated(ChannelId::from_label("c")),
        );
        assert_eq!(book.require_free(&op(1)), Err(ProtocolError::BadDeposit));
        book.set_status(&op(1), DepositStatus::Free);
        book.set_status(&op(1), DepositStatus::Spent);
        assert!(book.require_free(&op(1)).is_err());
    }

    #[test]
    fn duplicate_deposit_rejected() {
        let mut book = DepositBook::default();
        let d = dep(&mut book, 1, 100);
        book.add_mine(d.clone()).unwrap();
        assert_eq!(book.add_mine(d), Err(ProtocolError::BadDeposit));
    }

    #[test]
    fn deposit_without_key_rejected() {
        let mut book = DepositBook::default();
        let foreign = Keypair::from_seed(&[9; 32]).pk;
        let d = Deposit {
            outpoint: op(1),
            value: 5,
            committee: CommitteeSpec::single(foreign),
        };
        assert_eq!(book.add_mine(d), Err(ProtocolError::BadDeposit));
    }

    #[test]
    fn approval_tracking() {
        let mut book = DepositBook::default();
        let remote = Keypair::from_seed(&[8; 32]).pk;
        let d = dep(&mut book, 1, 100);
        book.add_mine(d.clone()).unwrap();
        assert!(!book.is_approved_by(&remote, &op(1)));
        book.mark_approved_by(remote, op(1));
        assert!(book.is_approved_by(&remote, &op(1)));
        // Approving remote deposits is tracked separately.
        let rd = Deposit {
            outpoint: op(2),
            value: 50,
            committee: CommitteeSpec::single(remote),
        };
        book.approve_remote(remote, rd);
        assert!(book.did_approve(&remote, &op(2)));
        assert_eq!(book.value_of(&op(2)), Some(50));
    }

    #[test]
    fn key_destruction() {
        let mut book = DepositBook::default();
        let kp = Keypair::from_seed(&[3; 32]);
        let pk = book.insert_key(kp.sk);
        assert!(book.keys.contains_key(&pk));
        book.destroy_key(&pk);
        assert!(!book.keys.contains_key(&pk));
    }
}
