//! The untrusted host: wraps a Teechain enclave, performs network and
//! blockchain I/O, stores sealed blobs, and coordinates committee
//! co-signing. Nothing here is trusted — a malicious host can only delay
//! or drop traffic, which the protocol tolerates by construction.

use crate::enclave::{Command, Effect, EnclaveConfig, HostEvent, TeechainEnclave};
use crate::ops::{self, Completion, OpError, OpId, OpJob, OpOutput, OpTracker};
use crate::types::{Deposit, ProtocolError, SwapId};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::Arc;
use teechain_blockchain::{Chain, Transaction};
use teechain_crypto::schnorr::{PublicKey, Signature};
use teechain_net::{Ctx, NodeId};
use teechain_persist::SharedStore;
use teechain_tee::{DeviceIdentity, Enclave, Measurement};
use teechain_trace::{span, EventKind, Tracer};
use teechain_util::codec::{Decode, Encode, Reader, WireError};

/// Node-to-node wire wrapper: enclave traffic plus host-level committee
/// signing coordination (signatures are not confidential; only
/// authenticity matters, and that is enforced *inside* the enclave by
/// checking the transaction against replicated state).
pub enum NodeWire {
    /// Enclave-to-enclave message (encoded [`crate::msg::WireMsg`]).
    Enclave(Vec<u8>),
    /// Co-signing request for a settlement.
    SigRequest {
        /// Correlates response with request at the origin.
        req_id: u64,
        /// The origin enclave identity (route the response back).
        origin: PublicKey,
        /// The transaction to co-sign.
        tx: Transaction,
    },
    /// Co-signing response.
    SigResponse {
        /// Correlates with the request.
        req_id: u64,
        /// Granted signatures.
        sigs: Vec<(u32, Signature)>,
        /// True if the member refused.
        refused: bool,
    },
}

impl Encode for NodeWire {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            NodeWire::Enclave(b) => {
                0u8.encode(out);
                b.encode(out);
            }
            NodeWire::SigRequest { req_id, origin, tx } => {
                1u8.encode(out);
                req_id.encode(out);
                origin.encode(out);
                tx.encode(out);
            }
            NodeWire::SigResponse {
                req_id,
                sigs,
                refused,
            } => {
                2u8.encode(out);
                req_id.encode(out);
                sigs.encode(out);
                refused.encode(out);
            }
        }
    }
}

impl Decode for NodeWire {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(match r.read::<u8>()? {
            0 => NodeWire::Enclave(r.read()?),
            1 => NodeWire::SigRequest {
                req_id: r.read()?,
                origin: r.read()?,
                tx: r.read()?,
            },
            2 => NodeWire::SigResponse {
                req_id: r.read()?,
                sigs: r.read()?,
                refused: r.read()?,
            },
            _ => return Err(WireError::InvalidValue("node wire tag")),
        })
    }
}

/// A shared handle to the simulated blockchain.
pub type SharedChain = Arc<Mutex<Chain>>;

/// A Teechain node: enclave + host logic.
pub struct TeechainNode {
    /// The TEE.
    pub enclave: Enclave<TeechainEnclave>,
    /// Cached enclave identity (after first `GetIdentity`).
    pub identity: Option<PublicKey>,
    /// Identity key → simulator node directory (out-of-band knowledge).
    pub directory: HashMap<PublicKey, NodeId>,
    /// The blockchain this node reads and writes asynchronously.
    pub chain: SharedChain,
    /// The *alternate* blockchain used by cross-chain atomic swaps
    /// ([`crate::swap`]): HTLCs are locked, claimed and refunded here
    /// while the Teechain channel side moves on `chain`. Freshly created
    /// per node; clusters share one instance via
    /// [`TeechainNode::attach_alt_chain`].
    pub chain2: SharedChain,
    /// Confirmations this host requires before approving a deposit
    /// (the per-participant security parameter of §4.1).
    pub required_confirmations: u64,
    /// Committee peers to ask for co-signatures (our chain members).
    pub committee_peers: Vec<PublicKey>,
    /// Host-side sealed storage: the latest full snapshot (persistent
    /// mode). Kept alongside [`TeechainNode::store`] for direct
    /// snapshot-only restores via [`Command::RestoreSealed`].
    pub sealed_store: Option<Vec<u8>>,
    /// Durable WAL + snapshot storage (persistent mode). Owned jointly
    /// with the harness: it models the disk, so it survives enclave and
    /// host crashes.
    pub store: Option<SharedStore>,
    /// Launch configuration, kept to rebuild the program on restart.
    pub cfg: EnclaveConfig,
    /// Events produced by the enclave, in order, with timestamps. This is
    /// the host's *internal* notification stream (unsolicited events such
    /// as `VerifyDeposit` callbacks land here); external callers consume
    /// [`TeechainNode::completions`] instead. Bounded: once the log
    /// reaches [`EVENT_LOG_CAP`] entries the oldest half is dropped, so a
    /// long or pathological run keeps recent history without growing RSS
    /// without bound.
    pub events: Vec<(u64, HostEvent)>,
    /// Terminal completions of submitted operations, in resolution order.
    /// Exactly one entry per [`TeechainNode::submit_op`] call eventually
    /// appears here; harness layers drain or scan it.
    pub completions: Vec<Completion>,
    /// In-flight operation correlation state.
    pub(crate) ops: OpTracker,
    /// Transactions this node broadcast (txids, for assertions).
    pub broadcasts: Vec<teechain_blockchain::TxId>,
    /// Transactions this node broadcast to the *alternate* chain (swap
    /// claims and refunds; txids, for assertions).
    pub alt_broadcasts: Vec<teechain_blockchain::TxId>,
    /// Adversarial knob: ignore [`HostEvent::VerifySwapHtlc`] requests,
    /// so the enclave never verifies the counterparty's HTLC and never
    /// reveals the swap secret (an initiator withholding past timeout).
    pub swap_withhold_verify: bool,
    /// Adversarial knob: ignore [`HostEvent::SwapFundingNeeded`], so a
    /// responder never locks the HTLC on the alternate chain.
    pub swap_withhold_funding: bool,
    /// Errors surfaced while delivering messages (protocol violations by
    /// peers are dropped, as a real implementation logs-and-drops).
    pub delivery_errors: Vec<ProtocolError>,
    /// Host-side flight recorder: causal spans + ring buffer. Disabled
    /// by default (one branch per instrumentation site); compiled out
    /// entirely without the `trace-record` feature.
    pub tracer: Tracer,
    /// Operations whose dispatch hit [`ProtocolError::CounterThrottled`],
    /// awaiting re-dispatch (FIFO) on the next admission pump.
    throttled: std::collections::VecDeque<u64>,
    /// Earliest outstanding pump-timer deadline (0 = none armed). The
    /// enclave asks for pumps via [`HostEvent::PumpAt`]; arming tracks
    /// the earliest request so redundant timers are not set.
    pump_armed_until: u64,
    /// Outstanding swap timers: token low bits → the action to run when
    /// the timer fires (a chain-watch tick, or a counter-throttled swap
    /// command retry).
    swap_timers: HashMap<u64, SwapTimerAction>,
    /// Next swap timer sequence number (48-bit token space).
    swap_timer_seq: u64,
    /// Swap phases entered on this node, indexed by phase discriminant
    /// (Init, Locked, Redeemed, Refunded); feeds the metrics registry.
    swap_phase_counts: [u64; 4],
}

/// What a fired swap timer should do.
enum SwapTimerAction {
    /// Observe the alternate chain and tick the swap state machine.
    Tick(SwapId),
    /// Re-issue a swap command that was counter-throttled.
    Retry(Command),
}

/// Timer token the node uses for admission-pump wakeups (queued-op
/// deadlines, counter-throttle expiry, deferred-message drains).
pub const PUMP_TOKEN: u64 = 0x7EE_C8A1_4E57;

/// Cap on [`TeechainNode::events`]: reaching it drops the oldest half.
pub const EVENT_LOG_CAP: usize = 65_536;

/// High-16-bit timer-token tag for operation deadline timers (low 48
/// bits carry the operation sequence number).
const OP_DEADLINE_TAG: u64 = 0x4F44 << 48;
/// High-16-bit timer-token tag for swap chain-watch/retry timers (low
/// 48 bits carry the swap timer sequence number).
const SWAP_TIMER_TAG: u64 = 0x5357 << 48;
/// Mask selecting a token's tag bits.
const OP_TAG_MASK: u64 = 0xFFFF << 48;

impl TeechainNode {
    /// Creates a node with a freshly launched enclave.
    pub fn new(device: DeviceIdentity, cfg: EnclaveConfig, seed: u64, chain: SharedChain) -> Self {
        let measurement = cfg.measurement;
        let program = TeechainEnclave::new(cfg.clone());
        TeechainNode {
            enclave: Enclave::launch(device, measurement, seed, program),
            identity: None,
            directory: HashMap::new(),
            chain,
            chain2: Arc::new(Mutex::new(Chain::new())),
            required_confirmations: 1,
            committee_peers: Vec::new(),
            sealed_store: None,
            store: None,
            cfg,
            events: Vec::new(),
            completions: Vec::new(),
            ops: OpTracker::default(),
            broadcasts: Vec::new(),
            alt_broadcasts: Vec::new(),
            swap_withhold_verify: false,
            swap_withhold_funding: false,
            delivery_errors: Vec::new(),
            tracer: Tracer::default(),
            throttled: std::collections::VecDeque::new(),
            pump_armed_until: 0,
            swap_timers: HashMap::new(),
            swap_timer_seq: 0,
            swap_phase_counts: [0; 4],
        }
    }

    /// Replaces the alternate (swap) chain with a shared instance so
    /// every node in the cluster observes the same second ledger.
    pub fn attach_alt_chain(&mut self, chain2: SharedChain) {
        self.chain2 = chain2;
    }

    /// Attaches durable storage (persistent mode). The store should be
    /// shared with the harness so it outlives crashes of this node.
    pub fn attach_store(&mut self, store: SharedStore) {
        self.store = Some(store);
    }

    /// Crashes the enclave: volatile state is lost; hardware counters,
    /// the sealing key and the durable store survive.
    pub fn crash_enclave(&mut self) {
        self.enclave.crash();
        // Throttled dispatches target the dead program; the ops stay
        // pending and resolve as dead at quiescence.
        self.throttled.clear();
        self.pump_armed_until = 0;
        // Armed swap timers target the dead program; recovery re-arms
        // fresh checks for every swap that still needs driving.
        self.swap_timers.clear();
    }

    /// Restarts a crashed enclave with a fresh program and replays the
    /// durable store ([`Command::Recover`]). Fails with
    /// [`ProtocolError::StaleState`] if the store was rolled back.
    pub fn recover_from_store(&mut self, ctx: &mut Ctx<'_>) -> Result<(), ProtocolError> {
        let store = self.store.clone().ok_or(ProtocolError::BadMessage)?;
        let recovery = store
            .lock()
            .recover()
            .map_err(|_| ProtocolError::BadMessage)?;
        self.enclave.restart(TeechainEnclave::new(self.cfg.clone()));
        let outcome = self
            .enclave
            .call(
                ctx.now_ns(),
                Command::Recover {
                    snapshot: recovery.snapshot,
                    log: recovery.log,
                },
            )
            .map_err(|_| ProtocolError::Frozen)?;
        // Recovery produces host events only — no network I/O — but the
        // events may ask for swap-check timers, so perform them fully.
        let effects = outcome?;
        self.perform(ctx, effects);
        Ok(())
    }

    /// The standard measurement for this build of the enclave program.
    pub fn measurement() -> Measurement {
        Measurement::of_program("teechain-enclave", 1)
    }

    /// Registers where a peer identity lives on the network.
    pub fn register_peer(&mut self, pk: PublicKey, node: NodeId) {
        self.directory.insert(pk, node);
    }

    /// Fetches (and caches) the enclave identity.
    pub fn identity(&mut self, now_ns: u64) -> PublicKey {
        if let Some(pk) = self.identity {
            return pk;
        }
        let effects = self
            .enclave
            .call(now_ns, Command::GetIdentity)
            .expect("enclave alive")
            .expect("GetIdentity is infallible");
        for e in &effects {
            if let Effect::Event(HostEvent::Identity(pk)) = e {
                self.identity = Some(*pk);
            }
        }
        self.identity.expect("identity event")
    }

    /// Issues a command to the enclave and performs the resulting effects.
    pub fn command(&mut self, ctx: &mut Ctx<'_>, cmd: Command) -> Result<(), ProtocolError> {
        let t = self.trace_ecall_begin(ctx.now_ns());
        let outcome = self
            .enclave
            .call(ctx.now_ns(), cmd)
            .map_err(|_| ProtocolError::Frozen)?;
        self.trace_ecall_end(ctx.now_ns(), t);
        let effects = outcome?;
        self.perform(ctx, effects);
        Ok(())
    }

    /// Handles an incoming network message.
    pub fn handle_wire(&mut self, ctx: &mut Ctx<'_>, _from: NodeId, bytes: Vec<u8>) {
        let Ok(msg) = NodeWire::decode_exact(&bytes) else {
            return; // Garbage from the network: drop.
        };
        match msg {
            NodeWire::Enclave(wire) => {
                self.trace_wire_recv(ctx.now_ns(), &wire);
                let t = self.trace_ecall_begin(ctx.now_ns());
                let result = self.enclave.call(ctx.now_ns(), Command::Deliver { wire });
                self.trace_ecall_end(ctx.now_ns(), t);
                match result {
                    Err(_) => {} // Crashed enclave drops traffic.
                    Ok(Ok(effects)) => self.perform(ctx, effects),
                    Ok(Err(ProtocolError::CounterThrottled { ready_at })) => {
                        // Persistent mode backpressure: the enclave stashed
                        // the message; pump once the counter is ready.
                        self.schedule_pump(ctx, ready_at);
                    }
                    Ok(Err(e)) => self.delivery_errors.push(e),
                }
            }
            NodeWire::SigRequest { req_id, origin, tx } => {
                if self.tracer.enabled() {
                    let s = span::sig_span(req_id, &origin.to_bytes(), 0);
                    self.tracer.record(
                        ctx.now_ns(),
                        EventKind::WireRecv,
                        s,
                        0,
                        bytes.len() as u64,
                        0,
                    );
                    self.tracer.set_cause(s);
                }
                let t = self.trace_ecall_begin(ctx.now_ns());
                let result = self
                    .enclave
                    .call(ctx.now_ns(), Command::CoSign { req_id, tx });
                self.trace_ecall_end(ctx.now_ns(), t);
                if let Ok(Ok(effects)) = result {
                    // CoSignResult events answer back to the origin node.
                    for e in effects {
                        if let Effect::Event(HostEvent::CoSignResult {
                            req_id,
                            sigs,
                            refused,
                        }) = e
                        {
                            if let Some(&node) = self.directory.get(&origin) {
                                let resp = NodeWire::SigResponse {
                                    req_id,
                                    sigs,
                                    refused,
                                };
                                let enc = resp.encode_to_vec();
                                if self.tracer.enabled() {
                                    let s = span::sig_span(req_id, &origin.to_bytes(), 1);
                                    self.tracer.record(
                                        ctx.now_ns(),
                                        EventKind::WireSend,
                                        s,
                                        self.tracer.cause(),
                                        enc.len() as u64,
                                        0,
                                    );
                                }
                                ctx.send(node, enc);
                            }
                        } else {
                            self.perform(ctx, vec![e]);
                        }
                    }
                }
            }
            NodeWire::SigResponse { req_id, sigs, .. } => {
                if self.tracer.enabled() {
                    // We are the origin the request named, so both ends
                    // derive the response span from our identity.
                    if let Some(me) = self.identity {
                        let s = span::sig_span(req_id, &me.to_bytes(), 1);
                        self.tracer.record(
                            ctx.now_ns(),
                            EventKind::WireRecv,
                            s,
                            0,
                            bytes.len() as u64,
                            0,
                        );
                        self.tracer.set_cause(s);
                    }
                }
                let t = self.trace_ecall_begin(ctx.now_ns());
                let result = self
                    .enclave
                    .call(ctx.now_ns(), Command::AddCoSigs { req_id, sigs });
                self.trace_ecall_end(ctx.now_ns(), t);
                if let Ok(Ok(effects)) = result {
                    self.perform(ctx, effects);
                }
            }
        }
    }

    /// Arms (or keeps) a pump timer no later than `at`. Stale timers
    /// fire harmlessly: the pump is idempotent.
    fn schedule_pump(&mut self, ctx: &mut Ctx<'_>, at: u64) {
        if self.pump_armed_until != 0 && self.pump_armed_until <= at {
            return;
        }
        self.pump_armed_until = at;
        let delay = at.saturating_sub(ctx.now_ns()).max(1);
        ctx.set_timer(delay, PUMP_TOKEN);
    }

    /// Fires node timers: admission pumps and operation deadlines.
    pub fn handle_timer(&mut self, ctx: &mut Ctx<'_>, token: u64) {
        if token & OP_TAG_MASK == OP_DEADLINE_TAG {
            let seq = token & !OP_TAG_MASK;
            if let Some(c) = self.ops.cancel(seq, ctx.now_ns()) {
                self.tracer.set_cause(0); // A deadline firing has no cause.
                self.trace_completion(ctx.now_ns(), &c);
                self.completions.push(c);
            }
            return;
        }
        if token & OP_TAG_MASK == SWAP_TIMER_TAG {
            let seq = token & !OP_TAG_MASK;
            match self.swap_timers.remove(&seq) {
                Some(SwapTimerAction::Tick(swap)) => self.swap_tick(ctx, swap),
                Some(SwapTimerAction::Retry(cmd)) => self.swap_call(ctx, cmd),
                None => {}
            }
            return;
        }
        if token != PUMP_TOKEN {
            return;
        }
        self.pump_armed_until = 0;
        self.pump(ctx);
    }

    /// Arms a swap timer firing at absolute time `at`.
    fn arm_swap_timer(&mut self, ctx: &mut Ctx<'_>, at: u64, action: SwapTimerAction) {
        let seq = self.swap_timer_seq;
        self.swap_timer_seq = self.swap_timer_seq.wrapping_add(1) & !OP_TAG_MASK;
        self.swap_timers.insert(seq, action);
        let delay = at.saturating_sub(ctx.now_ns()).max(1);
        ctx.set_timer(delay, SWAP_TIMER_TAG | seq);
    }

    /// Issues a swap command to the enclave; a counter-throttled
    /// rejection re-arms the command itself as a retry timer (swap
    /// commands are host reactions, not tracked operations, so the
    /// admission pump cannot re-dispatch them).
    fn swap_call(&mut self, ctx: &mut Ctx<'_>, cmd: Command) {
        let t = self.trace_ecall_begin(ctx.now_ns());
        let result = self.enclave.call(ctx.now_ns(), cmd.clone());
        self.trace_ecall_end(ctx.now_ns(), t);
        match result {
            Err(_) => {} // Crashed enclave: recovery re-drives swaps.
            Ok(Ok(effects)) => self.perform(ctx, effects),
            Ok(Err(ProtocolError::CounterThrottled { ready_at })) => {
                self.arm_swap_timer(ctx, ready_at, SwapTimerAction::Retry(cmd));
            }
            Ok(Err(e)) => self.delivery_errors.push(e),
        }
    }

    /// Observes the alternate chain on a swap-check timer and feeds the
    /// observation to the enclave ([`Command::SwapTick`]), which alone
    /// decides what it means.
    fn swap_tick(&mut self, ctx: &mut Ctx<'_>, swap: SwapId) {
        let Some(state) = self
            .enclave
            .program()
            .and_then(|p| p.swap_state(&swap).cloned())
        else {
            return;
        };
        let (spent_preimage, confirmations, claim_confirmed) = match state.htlc_outpoint {
            None => (None, 0, false),
            Some(outpoint) => {
                let mut chain = self.chain2.lock();
                // Block production while a reclaimable HTLC waits out its
                // timelock: the alternate chain grows regardless of
                // anything Teechain does, and the responder's on-chain
                // refund is gated on real confirmations. One block per
                // chain-watch tick — past the swap deadline in Locked, or
                // whenever an aborted swap still owns an unspent HTLC
                // (the stranded-funding race) — keeps that path reachable
                // without an external miner while leaving pre-deadline
                // pacing to the harness.
                let reclaim_pending = !state.initiator
                    && match state.phase {
                        crate::swap::SwapPhase::Locked => ctx.now_ns() >= state.deadline_ns,
                        crate::swap::SwapPhase::Refunded => true,
                        _ => false,
                    };
                if reclaim_pending && chain.find_spender(&outpoint).is_none() {
                    chain.mine_blocks(1);
                }
                let spender = chain.find_spender(&outpoint);
                let preimage = spender
                    .and_then(|tx| tx.inputs.iter().find(|i| i.prevout == outpoint))
                    .map(|i| i.preimage.clone())
                    .filter(|p| !p.is_empty());
                // The claim (or refund) counts once the spender is mined.
                let claimed = spender.map(|tx| tx.txid());
                let confirmed = claimed.is_some_and(|txid| chain.confirmations(&txid) >= 1);
                (preimage, chain.confirmations(&outpoint.txid), confirmed)
            }
        };
        self.swap_call(
            ctx,
            Command::SwapTick {
                swap,
                spent_preimage,
                confirmations,
                claim_confirmed,
            },
        );
    }

    /// Pumps the enclave admission layer (expires deadline-passed queued
    /// ops, drains unlocked channels, re-dispatches counter-stashed
    /// messages) and then re-dispatches any host-side throttled
    /// operations FIFO.
    fn pump(&mut self, ctx: &mut Ctx<'_>) {
        self.tracer.set_cause(0); // Timer-driven: the pump ecall is a root.
        let t = self.trace_ecall_begin(ctx.now_ns());
        let result = self.enclave.call(ctx.now_ns(), Command::PumpAdmission);
        self.trace_ecall_end(ctx.now_ns(), t);
        let pump_span = self.tracer.cause();
        match result {
            Ok(Ok(effects)) => self.perform(ctx, effects),
            Ok(Err(ProtocolError::CounterThrottled { ready_at })) => {
                self.schedule_pump(ctx, ready_at);
                return; // The counter gates the throttled ops too.
            }
            _ => {}
        }
        let mut n = self.throttled.len();
        while n > 0 {
            n -= 1;
            let Some(seq) = self.throttled.pop_front() else {
                break;
            };
            if self.ops.is_pending(seq) {
                if self.tracer.enabled() {
                    // Un-park: the op leaves the host throttle queue,
                    // causally released by this pump.
                    let s = span::op_span(ctx.self_id().0, seq);
                    self.tracer
                        .record(ctx.now_ns(), EventKind::QueueExit, s, pump_span, 0, 0);
                }
                self.dispatch_op(ctx, seq);
            }
        }
    }

    /// Carries out enclave effects: sends, broadcasts, chain checks,
    /// co-sign fan-out, persistence, event collection.
    pub fn perform(&mut self, ctx: &mut Ctx<'_>, effects: Vec<Effect>) {
        for effect in effects {
            match effect {
                Effect::Send { to, wire } => {
                    if let Some(&node) = self.directory.get(&to) {
                        self.trace_wire_send(ctx.now_ns(), &to, &wire);
                        ctx.send(node, NodeWire::Enclave(wire).encode_to_vec());
                    }
                }
                Effect::Broadcast(tx) => {
                    self.broadcasts.push(tx.txid());
                    // Asynchronous access: submission may fail (conflict)
                    // or linger unconfirmed arbitrarily long; the protocol
                    // never depends on when this lands.
                    let _ = self.chain.lock().submit(tx);
                }
                Effect::BroadcastAlt(tx) => {
                    self.alt_broadcasts.push(tx.txid());
                    // Duplicate re-drives after recovery are rejected
                    // here harmlessly. The alternate chain confirms
                    // eagerly: its miners extend it independently of
                    // anything Teechain does, and no swap path depends
                    // on *when* a valid spend lands — only on the HTLC
                    // script's own rules.
                    let mut chain = self.chain2.lock();
                    if chain.submit(tx).is_ok() {
                        chain.mine_blocks(1);
                    }
                }
                Effect::AppendLog(blob) => {
                    // Durability barrier before anything else in this
                    // batch becomes visible: effects are performed in
                    // order and the enclave emits AppendLog first. A
                    // failed append is fatal — the enclave has already
                    // spent the counter increment, so continuing would
                    // turn the lost commit into an undetectable-until-
                    // restart roll-back.
                    if let Some(store) = &self.store {
                        store
                            .lock()
                            .append_commit(&blob)
                            .expect("durable WAL append failed; node cannot continue");
                        if self.tracer.enabled() {
                            let cause = self.tracer.cause();
                            self.tracer.record(
                                ctx.now_ns(),
                                EventKind::WalAppend,
                                cause,
                                cause,
                                blob.len() as u64,
                                0,
                            );
                        }
                    }
                }
                Effect::Persist(blob) => {
                    if let Some(store) = &self.store {
                        store
                            .lock()
                            .install_snapshot(&blob)
                            .expect("durable snapshot install failed; node cannot continue");
                    }
                    if self.tracer.enabled() {
                        let cause = self.tracer.cause();
                        self.tracer.record(
                            ctx.now_ns(),
                            EventKind::WalSnapshot,
                            cause,
                            cause,
                            blob.len() as u64,
                            0,
                        );
                    }
                    self.sealed_store = Some(blob);
                }
                Effect::Event(event) => {
                    self.react(ctx, &event);
                    self.note_event(ctx.now_ns(), event);
                }
            }
        }
    }

    /// Automatic host reactions to enclave events.
    fn react(&mut self, ctx: &mut Ctx<'_>, event: &HostEvent) {
        match event {
            HostEvent::VerifyDeposit { remote, deposit } => {
                // The host checks the chain per its own policy and answers.
                let valid = self.verify_deposit_on_chain(deposit);
                let outpoint = deposit.outpoint;
                let remote = *remote;
                let result = self.enclave.call(
                    ctx.now_ns(),
                    Command::DepositVerified {
                        remote,
                        outpoint,
                        valid,
                    },
                );
                if let Ok(Ok(effects)) = result {
                    self.perform(ctx, effects);
                }
            }
            HostEvent::PumpAt(at) => {
                let at = *at;
                self.schedule_pump(ctx, at);
            }
            HostEvent::SwapFundingNeeded {
                swap,
                script,
                value,
            } => {
                if self.swap_withhold_funding {
                    return; // Adversary: leave the initiator hanging.
                }
                // Idempotent funding: recovery replays this request if the
                // crash fell inside the funding window, so re-offer an
                // existing matching lock instead of minting a second one.
                let outpoint = {
                    let mut chain = self.chain2.lock();
                    match chain.find_utxo_by_script(script, *value) {
                        Some(existing) => existing,
                        None => chain.mint(script.clone(), *value),
                    }
                };
                let swap = *swap;
                self.swap_call(ctx, Command::SwapFunded { swap, outpoint });
            }
            HostEvent::VerifySwapHtlc {
                swap,
                outpoint,
                script,
                value,
            } => {
                if self.swap_withhold_verify {
                    return; // Adversary: never verify, never reveal.
                }
                // The host vouches for script/value and reports the raw
                // confirmation count; the maturity policy (enough headroom
                // before the refund timelock) is enforced in the enclave,
                // which is the party at risk of a late, already-refundable
                // lock.
                let (valid, confirmations) = {
                    let chain = self.chain2.lock();
                    let valid = chain
                        .utxo(outpoint)
                        .is_some_and(|out| out.value == *value && out.script == *script);
                    (valid, chain.confirmations(&outpoint.txid))
                };
                let swap = *swap;
                self.swap_call(
                    ctx,
                    Command::SwapHtlcVerified {
                        swap,
                        valid,
                        confirmations,
                    },
                );
            }
            HostEvent::SwapCheckAt { swap, at } => {
                let (swap, at) = (*swap, *at);
                self.arm_swap_timer(ctx, at, SwapTimerAction::Tick(swap));
            }
            HostEvent::SwapPhaseEntered { phase, .. } => {
                self.swap_phase_counts[*phase as usize] += 1;
            }
            HostEvent::NeedCoSign { req_id, tx } => {
                let me = self.identity.expect("identity known by now");
                for peer in self.committee_peers.clone() {
                    if let Some(&node) = self.directory.get(&peer) {
                        let req = NodeWire::SigRequest {
                            req_id: *req_id,
                            origin: me,
                            tx: tx.clone(),
                        };
                        let enc = req.encode_to_vec();
                        if self.tracer.enabled() {
                            // One span for the whole fan-out: every
                            // receiver derives the same id from
                            // (req_id, origin).
                            let s = span::sig_span(*req_id, &me.to_bytes(), 0);
                            self.tracer.record(
                                ctx.now_ns(),
                                EventKind::WireSend,
                                s,
                                self.tracer.cause(),
                                enc.len() as u64,
                                0,
                            );
                        }
                        ctx.send(node, enc);
                    }
                }
            }
            _ => {}
        }
    }

    fn verify_deposit_on_chain(&self, deposit: &Deposit) -> bool {
        let chain = self.chain.lock();
        let Some(out) = chain.utxo(&deposit.outpoint) else {
            return false;
        };
        if out.value != deposit.value {
            return false;
        }
        // The on-chain script must match the claimed committee.
        let expected = teechain_blockchain::ScriptPubKey::multisig(
            deposit.committee.m,
            deposit.committee.member_keys.clone(),
        );
        if out.script != expected {
            return false;
        }
        chain.confirmations(&deposit.outpoint.txid) >= self.required_confirmations
    }

    /// Routes a host event through the operation tracker (which may
    /// resolve a pending operation into a completion), then records it on
    /// the internal notification stream.
    fn note_event(&mut self, now_ns: u64, event: HostEvent) {
        if let Some(c) = self.ops.observe(&event, now_ns) {
            self.trace_completion(now_ns, &c);
            self.completions.push(c);
        }
        if self.events.len() >= EVENT_LOG_CAP {
            self.events.drain(..EVENT_LOG_CAP / 2);
        }
        self.events.push((now_ns, event));
    }

    // ---- Trace instrumentation (host-side flight recorder) ----
    //
    // Every helper early-returns unless the tracer is enabled, and
    // `Tracer::enabled` is a compile-time `false` without the
    // `trace-record` feature — the span derivation below (decoding wire
    // headers, cloning admission stats) folds away entirely.

    /// Marks an enclave entry: mints the node's next deterministic ecall
    /// span, records it parented to the current cause, makes it the new
    /// cause (so effects performed during the call chain under it), and
    /// snapshots admission stats for [`TeechainNode::trace_ecall_end`]'s
    /// delta events. Returns `None` (and records nothing) when disabled.
    fn trace_ecall_begin(&mut self, now_ns: u64) -> Option<crate::admit::AdmitStats> {
        if !self.tracer.enabled() {
            return None;
        }
        let parent = self.tracer.cause();
        let span = self.tracer.next_ecall_span();
        self.tracer
            .record(now_ns, EventKind::Ecall, span, parent, 0, 0);
        self.tracer.set_cause(span);
        self.enclave.program().map(|p| p.admit_stats().clone())
    }

    /// Emits admission-layer events for whatever the ecall did to the
    /// in-enclave queues, derived host-side from the stats delta — the
    /// enclave itself records nothing (its sealed state and effect
    /// vocabulary stay trace-free).
    fn trace_ecall_end(&mut self, now_ns: u64, before: Option<crate::admit::AdmitStats>) {
        let Some(before) = before else {
            return;
        };
        let Some(after) = self.enclave.program().map(|p| p.admit_stats().clone()) else {
            return;
        };
        let cause = self.tracer.cause();
        // Saturating: a crash-restart inside the window resets the stats.
        let d = u64::saturating_sub;
        let deltas = [
            (EventKind::QueueEnter, d(after.enqueued, before.enqueued), 0),
            (EventKind::AdmitDefer, d(after.deferred, before.deferred), 0),
            (
                EventKind::AdmitBatch,
                d(after.batches, before.batches),
                d(after.batched_payments, before.batched_payments),
            ),
            (
                EventKind::AdmitReroute,
                d(after.rerouted, before.rerouted),
                0,
            ),
            (EventKind::AdmitExpire, d(after.expired, before.expired), 0),
        ];
        for (kind, a, b) in deltas {
            if a > 0 {
                self.tracer.record(now_ns, kind, cause, cause, a, b);
            }
        }
    }

    /// Records an inbound sealed frame and makes its span — the same id
    /// the sender minted from the `(from, to, seq)` header — the current
    /// cause, stitching the cross-node causal edge with zero wire bytes.
    fn trace_wire_recv(&mut self, now_ns: u64, wire: &[u8]) {
        if !self.tracer.enabled() {
            return;
        }
        let Some(me) = self.identity else {
            return;
        };
        if let Ok(crate::msg::WireMsg::Sealed { from, seq, .. }) =
            crate::msg::WireMsg::decode_exact(wire)
        {
            let s = span::wire_span(&from.to_bytes(), &me.to_bytes(), seq);
            self.tracer
                .record(now_ns, EventKind::WireRecv, s, 0, wire.len() as u64, 0);
            self.tracer.set_cause(s);
        }
    }

    /// Records an outbound sealed frame, parented to the emitting ecall.
    fn trace_wire_send(&mut self, now_ns: u64, to: &PublicKey, wire: &[u8]) {
        if !self.tracer.enabled() {
            return;
        }
        if let Ok(crate::msg::WireMsg::Sealed { from, seq, .. }) =
            crate::msg::WireMsg::decode_exact(wire)
        {
            let s = span::wire_span(&from.to_bytes(), &to.to_bytes(), seq);
            self.tracer.record(
                now_ns,
                EventKind::WireSend,
                s,
                self.tracer.cause(),
                wire.len() as u64,
                0,
            );
        }
    }

    /// Records an operation's terminal completion against its root span.
    fn trace_completion(&mut self, now_ns: u64, c: &Completion) {
        if !self.tracer.enabled() {
            return;
        }
        let s = span::op_span(c.op.node, c.op.seq);
        self.tracer.record(
            now_ns,
            EventKind::OpComplete,
            s,
            self.tracer.cause(),
            c.outcome.is_ok() as u64,
            0,
        );
    }

    /// Snapshots this node's metrics into a fresh registry: host-level
    /// counters, admission totals and the queue-depth/defer-age
    /// high-watermarks as gauges. Mergeable across nodes (counters add,
    /// gauges take the max).
    pub fn registry(&self) -> teechain_trace::Registry {
        let mut r = teechain_trace::Registry::new();
        r.counter("node.completions", self.completions.len() as u64);
        r.counter("node.events", self.events.len() as u64);
        r.counter("node.broadcasts", self.broadcasts.len() as u64);
        r.counter("node.alt_broadcasts", self.alt_broadcasts.len() as u64);
        r.counter("node.delivery_errors", self.delivery_errors.len() as u64);
        r.counter("swap.phase.init", self.swap_phase_counts[0]);
        r.counter("swap.phase.locked", self.swap_phase_counts[1]);
        r.counter("swap.phase.redeemed", self.swap_phase_counts[2]);
        r.counter("swap.phase.refunded", self.swap_phase_counts[3]);
        if let Some(p) = self.enclave.program() {
            // Swaps still pending on this node: the "stuck" gauge the
            // bench trend gate asserts is zero at quiescence.
            r.gauge_max("swap.pending", p.pending_swaps() as u64);
        }
        r.counter("trace.dropped", self.tracer.dropped());
        r.counter("trace.buffered", self.tracer.len() as u64);
        if let Some(a) = self.enclave.program().map(|p| p.admit_stats()) {
            r.counter("admit.enqueued", a.enqueued);
            r.counter("admit.deferred", a.deferred);
            r.counter("admit.batches", a.batches);
            r.counter("admit.batched_payments", a.batched_payments);
            r.counter("admit.expired", a.expired);
            r.counter("admit.flushed", a.flushed);
            r.counter("admit.requeued", a.requeued);
            r.counter("admit.rerouted", a.rerouted);
            r.gauge_max("admit.queue_depth_hwm", a.queue_depth_hwm);
            r.gauge_max("admit.defer_depth_hwm", a.defer_depth_hwm);
            r.gauge_max("admit.defer_age_max_ns", a.defer_age_max_ns);
            r.gauge_max("admit.max_batch", a.max_batch);
        }
        for (name, h) in self.swap_phase_latencies() {
            r.hist_merge(&name, &h);
        }
        r
    }

    /// Per-phase swap latency histograms, computed from this node's host
    /// event log (`SwapPhaseEntered` timestamps): time from `Init` to
    /// `Locked`, from `Locked` to the terminal phase, and end to end.
    /// Sample-exact and mergeable across nodes, like every registry
    /// histogram.
    pub fn swap_phase_latencies(
        &self,
    ) -> std::collections::BTreeMap<String, teechain_trace::Histogram> {
        use crate::swap::SwapPhase;
        let mut entered: HashMap<SwapId, [Option<u64>; 4]> = HashMap::new();
        for (ts, e) in &self.events {
            if let HostEvent::SwapPhaseEntered { swap, phase } = e {
                let slots = entered.entry(*swap).or_default();
                let slot = &mut slots[*phase as usize];
                if slot.is_none() {
                    *slot = Some(*ts);
                }
            }
        }
        let mut out: std::collections::BTreeMap<String, teechain_trace::Histogram> =
            std::collections::BTreeMap::new();
        for slots in entered.values() {
            let init = slots[SwapPhase::Init as usize];
            let locked = slots[SwapPhase::Locked as usize];
            let terminal =
                slots[SwapPhase::Redeemed as usize].or(slots[SwapPhase::Refunded as usize]);
            if let (Some(a), Some(b)) = (init, locked) {
                out.entry("swap.latency.init_to_locked".into())
                    .or_default()
                    .record(b.saturating_sub(a));
            }
            if let (Some(a), Some(b)) = (locked, terminal) {
                out.entry("swap.latency.locked_to_terminal".into())
                    .or_default()
                    .record(b.saturating_sub(a));
            }
            if let (Some(a), Some(b)) = (init, terminal) {
                out.entry("swap.latency.total".into())
                    .or_default()
                    .record(b.saturating_sub(a));
            }
        }
        out
    }

    // ---- Correlated operations (the `ops` layer) ----

    /// Submits `cmd` as a correlated operation: the returned [`OpId`]'s
    /// terminal [`Completion`] eventually appears in
    /// [`TeechainNode::completions`] — exactly once.
    ///
    /// * `deadline_ns`: absolute simulated time at which a still-pending
    ///   operation is declared dead with [`OpError::Timeout`] (via an
    ///   in-simulation timer, so the timeout is part of the deterministic
    ///   event stream). `None` leaves resolution to the harness's
    ///   quiescence check. Deadlines are for presumed-dead paths (a
    ///   crashed or unreachable peer): the wire protocol carries no
    ///   per-operation correlation ids, so if a deadline shorter than
    ///   the round trip expires on a *live* path, the late response
    ///   FIFO-matches the next same-key operation. Pick deadlines above
    ///   the path RTT.
    ///
    /// When the enclave's monotonic counter is throttled (persistent
    /// mode), the operation parks on the host's throttle queue and is
    /// re-dispatched FIFO on the next admission pump — callers never see
    /// `CounterThrottled`.
    pub fn submit_op(&mut self, ctx: &mut Ctx<'_>, cmd: Command, deadline_ns: Option<u64>) -> OpId {
        let key = ops::expect_for(&cmd);
        self.submit_job(ctx, OpJob::Cmd(cmd), key, deadline_ns)
    }

    /// Submits the composite fund-deposit operation (mint on chain, wait
    /// for confirmations, register with the enclave) as a correlated
    /// operation completing with [`OpOutput::DepositFunded`].
    pub fn submit_fund_deposit(&mut self, ctx: &mut Ctx<'_>, value: u64, m: u8) -> OpId {
        self.submit_job(ctx, OpJob::FundDeposit { value, m }, None, None)
    }

    /// Submits the composite open-channel operation (generate an
    /// in-enclave settlement address, then propose the channel) as a
    /// correlated operation completing with [`OpOutput::ChannelOpen`].
    pub fn submit_open_channel(
        &mut self,
        ctx: &mut Ctx<'_>,
        id: crate::types::ChannelId,
        remote: PublicKey,
    ) -> OpId {
        self.submit_job(
            ctx,
            OpJob::OpenChannel { id, remote },
            Some(ops::MatchKey::ChannelOpen(id)),
            None,
        )
    }

    /// Submits crash recovery from the durable store as a correlated
    /// operation completing with [`OpOutput::Recovered`].
    pub fn submit_recover(&mut self, ctx: &mut Ctx<'_>) -> OpId {
        self.submit_job(ctx, OpJob::Recover, Some(ops::MatchKey::Recovered), None)
    }

    fn submit_job(
        &mut self,
        ctx: &mut Ctx<'_>,
        job: OpJob,
        key: Option<crate::ops::MatchKey>,
        deadline_ns: Option<u64>,
    ) -> OpId {
        let op = self.ops.register(ctx.self_id().0, job, key);
        if self.tracer.enabled() {
            // Root of the operation's causal tree (parent 0).
            let s = span::op_span(op.node, op.seq);
            self.tracer
                .record(ctx.now_ns(), EventKind::OpSubmit, s, 0, op.seq, 0);
        }
        if let Some(deadline) = deadline_ns {
            let delay = deadline.saturating_sub(ctx.now_ns()).max(1);
            ctx.set_timer(delay, OP_DEADLINE_TAG | op.seq);
        }
        self.dispatch_op(ctx, op.seq);
        op
    }

    /// Executes (or re-executes, once the counter throttle lifts) a
    /// pending operation's job and resolves what can be resolved
    /// synchronously.
    fn dispatch_op(&mut self, ctx: &mut Ctx<'_>, seq: u64) {
        let Some(job) = self.ops.job(seq) else {
            return;
        };
        if self.tracer.enabled() {
            // Whatever the dispatch does (ecalls, sends) descends from
            // the operation's root span.
            self.tracer.set_cause(span::op_span(ctx.self_id().0, seq));
        }
        let result: Result<Option<OpOutput>, ProtocolError> = match job {
            OpJob::Cmd(cmd) => self.command(ctx, cmd).map(|()| None),
            OpJob::FundDeposit { value, m } => self
                .create_funded_committee_deposit(ctx, value, m)
                .map(|dep| Some(OpOutput::DepositFunded(dep))),
            OpJob::OpenChannel { id, remote } => {
                self.open_channel_steps(ctx, id, remote).map(|()| None)
            }
            OpJob::Recover => self.recover_from_store(ctx).map(|()| None),
        };
        match result {
            Ok(output) => {
                if let Some(out) = output {
                    self.finish_op(seq, ctx.now_ns(), Ok(out));
                } else if self.ops.expects_nothing(seq) {
                    // No asynchronous terminal event: accepted == done.
                    self.finish_op(seq, ctx.now_ns(), Ok(OpOutput::Done));
                }
                // Otherwise the terminal event either already resolved
                // the operation (it was in this call's own effects) or
                // will arrive over the network.
            }
            Err(ProtocolError::CounterThrottled { ready_at }) => {
                // Park the op; the admission pump re-dispatches FIFO once
                // the counter is ready.
                if self.tracer.enabled() {
                    let s = span::op_span(ctx.self_id().0, seq);
                    self.tracer.record(
                        ctx.now_ns(),
                        EventKind::QueueEnter,
                        s,
                        self.tracer.cause(),
                        0,
                        0,
                    );
                }
                self.throttled.push_back(seq);
                self.schedule_pump(ctx, ready_at);
            }
            Err(e) => self.finish_op(seq, ctx.now_ns(), Err(OpError::Rejected(e))),
        }
    }

    /// The open-channel composite: a fresh in-enclave settlement address
    /// followed by the channel proposal. The address is extracted from
    /// the ecall outcome directly (not routed through the event stream),
    /// so it cannot be mistaken for a user-submitted `NewAddress`
    /// operation's response.
    fn open_channel_steps(
        &mut self,
        ctx: &mut Ctx<'_>,
        id: crate::types::ChannelId,
        remote: PublicKey,
    ) -> Result<(), ProtocolError> {
        let outcome = self
            .enclave
            .call(ctx.now_ns(), Command::NewAddress)
            .map_err(|_| ProtocolError::Frozen)??;
        let my_settlement = outcome
            .iter()
            .find_map(|e| match e {
                Effect::Event(HostEvent::NewAddress(pk)) => Some(*pk),
                _ => None,
            })
            .ok_or(ProtocolError::BadMessage)?;
        self.command(
            ctx,
            Command::NewChannel {
                id,
                remote,
                my_settlement,
            },
        )
    }

    fn finish_op(&mut self, seq: u64, now_ns: u64, outcome: Result<OpOutput, OpError>) {
        if let Some(c) = self.ops.complete(seq, now_ns, outcome) {
            self.trace_completion(now_ns, &c);
            self.completions.push(c);
        }
    }

    /// Declares a still-pending operation dead (harness quiescence
    /// resolution): records and returns its [`OpError::Timeout`]
    /// completion. `None` if the operation already completed.
    pub fn resolve_dead_op(&mut self, op: OpId, now_ns: u64) -> Option<Completion> {
        let c = self.ops.cancel(op.seq, now_ns)?;
        self.tracer.set_cause(0); // Quiescence resolution has no cause.
        self.trace_completion(now_ns, &c);
        self.completions.push(c.clone());
        Some(c)
    }

    /// Declares EVERY still-pending operation dead: the harness calls
    /// this when the network reaches quiescence, at which point no
    /// terminal response can arrive anymore. Guarantees exactly-once
    /// completion delivery even for operations nobody waits on (a stale
    /// pending operation would otherwise poison the per-key FIFO and
    /// steal a later operation's response). Returns how many were
    /// resolved.
    pub fn resolve_all_dead(&mut self, now_ns: u64) -> usize {
        let dead = self.ops.cancel_all(now_ns);
        let n = dead.len();
        self.tracer.set_cause(0); // Quiescence resolution has no cause.
        for c in &dead {
            self.trace_completion(now_ns, c);
        }
        self.completions.extend(dead);
        n
    }

    /// Convenience: funds and registers a 1-of-1 deposit for this node.
    /// Mints `value` to a fresh in-enclave address, waits for the host's
    /// required confirmations, and registers the deposit. Returns it.
    pub fn create_funded_deposit(
        &mut self,
        ctx: &mut Ctx<'_>,
        value: u64,
    ) -> Result<Deposit, ProtocolError> {
        self.create_funded_committee_deposit(ctx, value, 1)
    }

    /// Funds a deposit into an m-of-n committee address (n = chain
    /// length + 1). With `m = 1` and no backups this degenerates to
    /// Alg. 1's 1-of-1 deposits.
    pub fn create_funded_committee_deposit(
        &mut self,
        ctx: &mut Ctx<'_>,
        value: u64,
        m: u8,
    ) -> Result<Deposit, ProtocolError> {
        let outcome = self
            .enclave
            .call(ctx.now_ns(), Command::NewCommitteeAddress { m })
            .map_err(|_| ProtocolError::Frozen)??;
        let mut spec = None;
        for e in &outcome {
            if let Effect::Event(HostEvent::CommitteeAddress(s)) = e {
                spec = Some(s.clone());
            }
        }
        let spec = spec.ok_or(ProtocolError::BadDeposit)?;
        let outpoint = {
            let mut chain = self.chain.lock();
            let script =
                teechain_blockchain::ScriptPubKey::multisig(spec.m, spec.member_keys.clone());
            let op = chain.mint(script, value);
            // Ensure our own confirmation policy is met.
            if self.required_confirmations > 1 {
                chain.mine_blocks(self.required_confirmations - 1);
            }
            op
        };
        let deposit = Deposit {
            outpoint,
            value,
            committee: spec,
        };
        self.command(
            ctx,
            Command::NewDeposit {
                deposit: deposit.clone(),
            },
        )?;
        Ok(deposit)
    }
}
