//! Core identifier and configuration types.

use teechain_blockchain::OutPoint;
use teechain_crypto::schnorr::PublicKey;
use teechain_util::codec::{Decode, Encode, Reader, WireError};
use teechain_util::hex;

/// Identifies a payment channel. Chosen by the opening party; must be
/// unique between a pair of TEEs (it is namespaced by the session).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ChannelId(pub [u8; 32]);

impl ChannelId {
    /// Derives a channel id from a human-readable label (tests, examples).
    pub fn from_label(label: &str) -> Self {
        ChannelId(teechain_crypto::sha256::tagged_hash(
            "teechain/channel-id",
            &[label.as_bytes()],
        ))
    }

    /// Short printable form.
    pub fn short(&self) -> String {
        hex::encode(&self.0[..4])
    }
}

impl Encode for ChannelId {
    fn encode(&self, out: &mut Vec<u8>) {
        self.0.encode(out);
    }
}

impl Decode for ChannelId {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(ChannelId(r.read()?))
    }
}

/// Identifies a multi-hop payment route instance. The `Ord` impl is the
/// admission layer's wait-die priority: route ids are totally ordered,
/// so "defer only behind a greater id" makes the cross-enclave wait-for
/// graph acyclic (see `admit`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RouteId(pub [u8; 32]);

impl Encode for RouteId {
    fn encode(&self, out: &mut Vec<u8>) {
        self.0.encode(out);
    }
}

impl Decode for RouteId {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(RouteId(r.read()?))
    }
}

/// Identifies a cross-chain atomic swap instance (see [`crate::swap`]).
/// Chosen by the initiating host (like [`RouteId`] for multi-hop routes)
/// so the operation layer can correlate the eventual completion; the swap
/// *secret* is generated inside the enclave and is unrelated to this id.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SwapId(pub [u8; 32]);

impl SwapId {
    /// Derives a swap id from a human-readable label (tests, examples).
    pub fn from_label(label: &str) -> Self {
        SwapId(teechain_crypto::sha256::tagged_hash(
            "teechain/swap-id",
            &[label.as_bytes()],
        ))
    }

    /// Short printable form.
    pub fn short(&self) -> String {
        hex::encode(&self.0[..4])
    }
}

impl Encode for SwapId {
    fn encode(&self, out: &mut Vec<u8>) {
        self.0.encode(out);
    }
}

impl Decode for SwapId {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(SwapId(r.read()?))
    }
}

/// The committee configuration of a deposit: the deposit pays into an
/// `m`-of-`members.len()` multisignature address over the committee TEEs'
/// blockchain keys (§6.1).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CommitteeSpec {
    /// Signature threshold `m`.
    pub m: u8,
    /// The blockchain public keys of the committee members, in chain order
    /// (index 0 = the deposit owner's primary TEE).
    pub member_keys: Vec<PublicKey>,
}

teechain_util::impl_wire_struct!(CommitteeSpec { m, member_keys });

impl CommitteeSpec {
    /// A 1-out-of-1 deposit secured by a single TEE key (Alg. 1's
    /// simplified form).
    pub fn single(key: PublicKey) -> Self {
        CommitteeSpec {
            m: 1,
            member_keys: vec![key],
        }
    }

    /// Committee size `n`.
    pub fn n(&self) -> usize {
        self.member_keys.len()
    }
}

/// A fund deposit (§4.1): an on-chain transaction output whose keys are
/// held by TEEs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Deposit {
    /// The on-chain output.
    pub outpoint: OutPoint,
    /// Its value.
    pub value: u64,
    /// Committee securing it.
    pub committee: CommitteeSpec,
}

teechain_util::impl_wire_struct!(Deposit {
    outpoint,
    value,
    committee,
});

/// The stage of a channel's participation in a multi-hop payment (Alg. 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MultihopStage {
    /// No multi-hop payment in progress.
    Idle,
    /// Channel locked; balances are pre-payment.
    Lock,
    /// τ is being signed along the path.
    Sign,
    /// Fully signed τ held; only τ-settlement allowed.
    PreUpdate,
    /// Balances updated to post-payment; τ still authoritative.
    Update,
    /// τ discarded; individual post-payment settlement allowed.
    PostUpdate,
    /// Unlocking.
    Release,
    /// Prematurely terminated.
    Terminated,
}

impl Encode for MultihopStage {
    fn encode(&self, out: &mut Vec<u8>) {
        let tag: u8 = match self {
            MultihopStage::Idle => 0,
            MultihopStage::Lock => 1,
            MultihopStage::Sign => 2,
            MultihopStage::PreUpdate => 3,
            MultihopStage::Update => 4,
            MultihopStage::PostUpdate => 5,
            MultihopStage::Release => 6,
            MultihopStage::Terminated => 7,
        };
        tag.encode(out);
    }
}

impl Decode for MultihopStage {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(match r.read::<u8>()? {
            0 => MultihopStage::Idle,
            1 => MultihopStage::Lock,
            2 => MultihopStage::Sign,
            3 => MultihopStage::PreUpdate,
            4 => MultihopStage::Update,
            5 => MultihopStage::PostUpdate,
            6 => MultihopStage::Release,
            7 => MultihopStage::Terminated,
            _ => return Err(WireError::InvalidValue("multihop stage")),
        })
    }
}

/// Protocol-level failures surfaced to the host.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProtocolError {
    /// No established session with the remote TEE.
    NoSession,
    /// Unknown channel id.
    UnknownChannel,
    /// The channel already exists.
    ChannelExists,
    /// The channel is not open (ack outstanding or already settled).
    ChannelNotOpen,
    /// The channel is locked by an in-flight multi-hop payment (§5.1).
    ChannelLocked,
    /// The channel was settled, ejected or closed while the operation
    /// was still queued behind its lock (admission queue flush).
    ChannelClosed,
    /// Balance too low for the requested payment or dissociation.
    InsufficientBalance,
    /// Deposit unknown, not free, or not approved by the counterparty.
    BadDeposit,
    /// Message failed authentication / freshness checks.
    BadMessage,
    /// Remote attestation failed.
    AttestationFailed,
    /// Operation illegal in the current multi-hop stage.
    BadStage,
    /// This enclave is frozen (force-freeze replication tripped, §6).
    Frozen,
    /// Replication backup did not match expectations.
    ReplicationError,
    /// The presented proof of premature termination is not valid.
    BadPopt,
    /// Monotonic counter is throttled; retry at the given time (ns).
    CounterThrottled {
        /// Earliest retry time.
        ready_at: u64,
    },
    /// Crash recovery presented storage older than the hardware
    /// monotonic counter proves must exist — a roll-back attack or a
    /// lost WAL suffix. The enclave refuses to run on stale state
    /// (§6.2).
    StaleState {
        /// Highest commit counter the presented storage reaches.
        found: u64,
        /// The hardware counter value (commits that must be present).
        expected: u64,
    },
    /// A cross-chain atomic swap is pending on the channel: settlement
    /// and further swaps are refused until it resolves (the anti-griefing
    /// guard — settling mid-swap would strand the counterparty's on-chain
    /// lock).
    SwapPending,
}

impl ProtocolError {
    /// Short stable variant name (used for `op_errors` accounting in the
    /// bench artifacts and for [`crate::ops::OpError::label`]).
    pub fn name(&self) -> &'static str {
        match self {
            ProtocolError::NoSession => "NoSession",
            ProtocolError::UnknownChannel => "UnknownChannel",
            ProtocolError::ChannelExists => "ChannelExists",
            ProtocolError::ChannelNotOpen => "ChannelNotOpen",
            ProtocolError::ChannelLocked => "ChannelLocked",
            ProtocolError::ChannelClosed => "ChannelClosed",
            ProtocolError::InsufficientBalance => "InsufficientBalance",
            ProtocolError::BadDeposit => "BadDeposit",
            ProtocolError::BadMessage => "BadMessage",
            ProtocolError::AttestationFailed => "AttestationFailed",
            ProtocolError::BadStage => "BadStage",
            ProtocolError::Frozen => "Frozen",
            ProtocolError::ReplicationError => "ReplicationError",
            ProtocolError::BadPopt => "BadPopt",
            ProtocolError::CounterThrottled { .. } => "CounterThrottled",
            ProtocolError::StaleState { .. } => "StaleState",
            ProtocolError::SwapPending => "SwapPending",
        }
    }

    /// Wire code for carrying a failure *reason* inside a protocol
    /// message (multi-hop abort unwinding). Only payload-free variants
    /// travel; the payload-carrying ones collapse to their tag and decode
    /// to a zeroed payload.
    pub fn abort_code(&self) -> u8 {
        match self {
            ProtocolError::NoSession => 0,
            ProtocolError::UnknownChannel => 1,
            ProtocolError::ChannelExists => 2,
            ProtocolError::ChannelNotOpen => 3,
            ProtocolError::ChannelLocked => 4,
            ProtocolError::InsufficientBalance => 5,
            ProtocolError::BadDeposit => 6,
            ProtocolError::BadMessage => 7,
            ProtocolError::AttestationFailed => 8,
            ProtocolError::BadStage => 9,
            ProtocolError::Frozen => 10,
            ProtocolError::ReplicationError => 11,
            ProtocolError::BadPopt => 12,
            ProtocolError::CounterThrottled { .. } => 13,
            ProtocolError::StaleState { .. } => 14,
            ProtocolError::ChannelClosed => 15,
            ProtocolError::SwapPending => 16,
        }
    }

    /// Inverse of [`ProtocolError::abort_code`] (unknown codes collapse
    /// to [`ProtocolError::BadStage`], the generic multi-hop failure).
    pub fn from_abort_code(code: u8) -> ProtocolError {
        match code {
            0 => ProtocolError::NoSession,
            1 => ProtocolError::UnknownChannel,
            2 => ProtocolError::ChannelExists,
            3 => ProtocolError::ChannelNotOpen,
            4 => ProtocolError::ChannelLocked,
            5 => ProtocolError::InsufficientBalance,
            6 => ProtocolError::BadDeposit,
            7 => ProtocolError::BadMessage,
            8 => ProtocolError::AttestationFailed,
            10 => ProtocolError::Frozen,
            11 => ProtocolError::ReplicationError,
            12 => ProtocolError::BadPopt,
            13 => ProtocolError::CounterThrottled { ready_at: 0 },
            14 => ProtocolError::StaleState {
                found: 0,
                expected: 0,
            },
            15 => ProtocolError::ChannelClosed,
            16 => ProtocolError::SwapPending,
            _ => ProtocolError::BadStage,
        }
    }
}

impl std::fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            ProtocolError::NoSession => "no session with remote TEE",
            ProtocolError::UnknownChannel => "unknown channel",
            ProtocolError::ChannelExists => "channel already exists",
            ProtocolError::ChannelNotOpen => "channel not open",
            ProtocolError::ChannelLocked => "channel locked by multi-hop payment",
            ProtocolError::ChannelClosed => "channel closed while operation queued",
            ProtocolError::InsufficientBalance => "insufficient balance",
            ProtocolError::BadDeposit => "deposit unknown, unapproved or not free",
            ProtocolError::BadMessage => "message failed authentication",
            ProtocolError::AttestationFailed => "remote attestation failed",
            ProtocolError::BadStage => "operation illegal in current multi-hop stage",
            ProtocolError::Frozen => "enclave frozen by force-freeze replication",
            ProtocolError::ReplicationError => "replication error",
            ProtocolError::BadPopt => "invalid proof of premature termination",
            ProtocolError::CounterThrottled { .. } => "monotonic counter throttled",
            ProtocolError::SwapPending => "atomic swap pending on channel",
            ProtocolError::StaleState { found, expected } => {
                return write!(
                    f,
                    "stale durable state: storage reaches commit {found}, hardware counter proves {expected}"
                );
            }
        };
        write!(f, "{s}")
    }
}

impl std::error::Error for ProtocolError {}

#[cfg(test)]
mod tests {
    use super::*;
    use teechain_crypto::schnorr::Keypair;

    #[test]
    fn channel_id_deterministic() {
        assert_eq!(ChannelId::from_label("c1"), ChannelId::from_label("c1"));
        assert_ne!(ChannelId::from_label("c1"), ChannelId::from_label("c2"));
    }

    #[test]
    fn committee_spec_roundtrip() {
        let spec = CommitteeSpec {
            m: 2,
            member_keys: (1..=3u8).map(|i| Keypair::from_seed(&[i; 32]).pk).collect(),
        };
        let decoded = CommitteeSpec::decode_exact(&spec.encode_to_vec()).unwrap();
        assert_eq!(decoded, spec);
        assert_eq!(decoded.n(), 3);
    }

    #[test]
    fn stage_roundtrip() {
        for stage in [
            MultihopStage::Idle,
            MultihopStage::Lock,
            MultihopStage::Sign,
            MultihopStage::PreUpdate,
            MultihopStage::Update,
            MultihopStage::PostUpdate,
            MultihopStage::Release,
            MultihopStage::Terminated,
        ] {
            let decoded = MultihopStage::decode_exact(&stage.encode_to_vec()).unwrap();
            assert_eq!(decoded, stage);
        }
    }
}
