//! Pluggable fault-tolerance backends (§6 of the paper).
//!
//! Teechain survives TEE crashes through one of two interchangeable
//! mechanisms, chosen per node:
//!
//! * **Replication** — force-freeze committee chains (Alg. 3,
//!   [`crate::replication`]): state deltas propagate down a chain of
//!   backup TEEs before any effect becomes visible. Fast (tens of
//!   thousands of tx/s; the replication message dominates) but requires
//!   extra machines in distinct failure domains.
//! * **Persist** — §6.2 persistent storage: every commit seals its state
//!   deltas, binds them to a hardware monotonic-counter increment and
//!   appends them to a host-side write-ahead log
//!   ([`teechain_persist`]); periodic sealed snapshots compact the log.
//!   No extra machines, but the SGX counter throttle (~10 increments/s)
//!   caps unbatched throughput at ~10 tx/s (Table 1) — group commit
//!   amortizes one increment over a whole batch of deltas.
//! * **None** — no fault tolerance: a crashed TEE strands its channels
//!   until its deposits are reclaimed by settlement from the
//!   counterparty side.
//!
//! [`DurabilityBackend`] is consumed in two places: the enclave config
//! ([`crate::enclave::EnclaveConfig`]) reads the persistence policy, and
//! the cluster harnesses ([`crate::testkit::Cluster`], the bench
//! harness) wire up stores or backup chains accordingly.

/// Tuning for the persistent-storage backend.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PersistPolicy {
    /// Install a full sealed snapshot (and compact the WAL) every this
    /// many commits. `1` reproduces the paper's naive full-state sealing
    /// (every state change seals everything); larger values amortize
    /// snapshot cost over WAL appends.
    pub snapshot_every: u32,
}

impl Default for PersistPolicy {
    fn default() -> Self {
        PersistPolicy { snapshot_every: 8 }
    }
}

/// Which fault-tolerance mechanism a node runs (§6).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DurabilityBackend {
    /// No fault tolerance (Table 1 row 2).
    #[default]
    None,
    /// Committee-chain replication with this many backups per node
    /// (§6.1). The enclave itself treats this like `None` — replication
    /// state flows through `AttachBackup` — but cluster builders use the
    /// count to spawn and chain backup TEEs.
    Replication {
        /// Backups per primary (chain length minus one).
        backups: usize,
    },
    /// §6.2 persistent storage with monotonic counters.
    Persist(PersistPolicy),
}

impl DurabilityBackend {
    /// Persistent storage with the default policy.
    pub fn persistent() -> Self {
        DurabilityBackend::Persist(PersistPolicy::default())
    }

    /// Persistent storage that seals a full snapshot on every commit —
    /// the paper's §6.2 behaviour, with the WAL degenerating to empty.
    pub fn eager_persist() -> Self {
        DurabilityBackend::Persist(PersistPolicy { snapshot_every: 1 })
    }

    /// True for the persistent-storage backend.
    pub fn is_persist(&self) -> bool {
        matches!(self, DurabilityBackend::Persist(_))
    }

    /// The persistence policy, if this backend has one.
    pub fn persist_policy(&self) -> Option<PersistPolicy> {
        match self {
            DurabilityBackend::Persist(p) => Some(*p),
            _ => None,
        }
    }

    /// Backups each primary should get from a cluster builder.
    pub fn auto_backups(&self) -> usize {
        match self {
            DurabilityBackend::Replication { backups } => *backups,
            _ => 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backend_accessors() {
        assert!(!DurabilityBackend::None.is_persist());
        assert!(DurabilityBackend::persistent().is_persist());
        assert_eq!(
            DurabilityBackend::eager_persist().persist_policy(),
            Some(PersistPolicy { snapshot_every: 1 })
        );
        assert_eq!(
            DurabilityBackend::Replication { backups: 2 }.auto_backups(),
            2
        );
        assert_eq!(DurabilityBackend::persistent().auto_backups(), 0);
    }
}
