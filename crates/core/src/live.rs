//! `teechain-live`: the protocol on real threads, real sockets and real
//! clocks.
//!
//! Everywhere else in this crate the nodes run inside the discrete-event
//! simulator. [`LiveCluster`] runs the *unmodified* state machines —
//! [`TeechainNode`], its enclave and its operation tracker — as an actual
//! concurrent system behind a [`LiveBackend`] selector:
//!
//! * [`LiveBackend::Threads`] / [`LiveBackend::Tcp`] — the per-node
//!   runtime: every node gets its own OS thread with a wall-clock timer
//!   heap, and messages travel over a real [`Transport`] backend
//!   (in-process channels or localhost TCP, see `teechain_net::live`).
//! * [`LiveBackend::Reactor`] — the sharded runtime (the internal
//!   `live_sched` module): thousands of nodes share a fixed pool of
//!   worker threads via run-queues, with the non-blocking reactor
//!   transport delivering frames straight into node inboxes. Total
//!   thread count is constant in cluster size, which is what makes
//!   1,000+ real nodes per box possible.
//!
//! Both runtimes publish completions to the same shared streams, so the
//! entire public surface below behaves identically across backends.
//!
//! # How a node runs live
//!
//! Each node's event loop blocks on one input queue fed by two sources: a
//! pump thread forwarding inbound transport messages, and the harness
//! submitting operations. Handlers are executed through
//! [`teechain_net::live::drive`], which hands the node the same
//! [`Ctx`](teechain_net::Ctx) surface the engines do but returns the
//! emitted actions; the loop then
//! performs them for real — sends go out on the transport, timers land in
//! a [`BinaryHeap`] keyed by monotonic wall-clock nanoseconds, and CPU
//! `Busy` accounting is dropped (live handlers burn real CPU). Time is
//! nanoseconds since the cluster epoch, so in-protocol deadlines and
//! retry timers behave exactly as in simulation, just against a real
//! clock.
//!
//! # What stays comparable with the simulator
//!
//! A [`LiveCluster`] built from a [`LiveConfig`] derives its trust root,
//! device identities and enclave seeds with the same formulas as
//! [`testkit::Cluster`](crate::testkit::Cluster), so enclave identity
//! keys, channel ids and transaction ids are bit-identical across
//! substrates, and operations get the same `(node, seq)` ids when
//! submitted in the same per-node order. Completion *times* differ (real
//! clocks) and cross-node interleavings race, but per-operation outcomes
//! are substrate-independent — the `live_equivalence` suite replays one
//! seeded scenario on the sequential engine, the sharded engine and the
//! live backends and asserts identical outcome sets.
//!
//! # What does not carry over
//!
//! No global determinism, no simulated link latency/jitter, no
//! single-server CPU model, and no crash fault injection (use the
//! simulator for those studies). The live path is for running the
//! protocol at hardware speed — `cargo run --release -p teechain-bench
//! --bin live` measures it.

use crate::enclave::Command;
use crate::node::{SharedChain, TeechainNode};
use crate::ops::{Completion, Delivered, OpError, OpId, OpResult, Payment, Pending, Settlement};
use crate::testkit::build_wired_nodes;
use crate::types::{ChannelId, Deposit, RouteId};
use crate::DurabilityBackend;
use parking_lot::Mutex;
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{self, Receiver, RecvTimeoutError, Sender};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};
use teechain_blockchain::Chain;
use teechain_crypto::schnorr::PublicKey;
use teechain_net::live::drive;
use teechain_net::{NodeAction, NodeId, TcpNet, ThreadNet, Transport, TransportRx, TransportTx};
use teechain_persist::SharedStore;
use teechain_util::rng::Xoshiro256;

/// Configuration for a [`LiveCluster`].
#[derive(Clone)]
pub struct LiveConfig {
    /// Number of nodes (one OS thread + one pump thread each).
    pub n: usize,
    /// Seed for identities and RNG lanes. The same seed produces the
    /// same enclave identities as a [`crate::testkit::Cluster`], which is
    /// what makes sim-vs-live outcome comparison meaningful.
    pub seed: u64,
    /// Fault-tolerance backend applied to every node (§6). The live
    /// runtime supports [`DurabilityBackend::None`] and
    /// [`DurabilityBackend::Persist`]; committee-chain replication needs
    /// backup-node wiring the live harness does not build yet —
    /// [`LiveCluster::new`] rejects it rather than silently running
    /// replication-mode enclaves with an empty committee.
    pub durability: DurabilityBackend,
    /// Enable every node's flight recorder from launch. Timestamps are
    /// wall-clock ns since the cluster epoch; drain the merged stream
    /// with [`LiveCluster::drain_trace`]. Recording only happens when
    /// the `trace-record` feature is compiled in.
    pub tracing: bool,
    /// Worker-thread pool size for the sharded runtime
    /// ([`LiveBackend::Reactor`]); `0` resolves to the host's available
    /// parallelism. Ignored by the thread-per-node backends.
    pub workers: usize,
}

impl Default for LiveConfig {
    fn default() -> Self {
        LiveConfig {
            n: 2,
            seed: 7,
            durability: DurabilityBackend::None,
            tracing: false,
            workers: 0,
        }
    }
}

/// Which live substrate a [`LiveCluster`] runs on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LiveBackend {
    /// Thread-per-node over in-process channels ([`ThreadNet`]).
    Threads,
    /// Thread-per-node over localhost TCP sockets ([`TcpNet`]).
    Tcp,
    /// Run-queue scheduler over the non-blocking reactor transport
    /// ([`teechain_net::ReactorNet`]): constant thread count, built for
    /// 1,000+ nodes.
    Reactor,
}

/// How long the blocking conveniences ([`LiveCluster::connect`],
/// [`LiveCluster::pay`], …) wait for a completion before declaring the
/// operation dead. Generous: live CI machines stall unpredictably.
pub const DEFAULT_OP_TIMEOUT: Duration = Duration::from_secs(30);

/// Control-plane requests the harness sends into a node's event loop
/// (per-node runtime) or inbox (sharded runtime).
pub(crate) enum LiveReq {
    /// Submit `cmd` as a correlated operation.
    Submit {
        cmd: Command,
        deadline_ns: Option<u64>,
        reply: Sender<OpId>,
    },
    /// Submit the composite open-channel operation.
    OpenChannel {
        id: ChannelId,
        remote: PublicKey,
        reply: Sender<OpId>,
    },
    /// Submit the composite fund-deposit operation.
    FundDeposit {
        value: u64,
        m: u8,
        reply: Sender<OpId>,
    },
    /// Declare a still-pending operation dead (harness-side wait
    /// timeout): its typed `Timeout` completion is recorded like any
    /// other, keeping the stream exactly-once.
    ResolveDead { op: OpId, reply: Sender<bool> },
    /// Snapshot the node's metrics registry (plus the loop's own
    /// transport counters) — the live analogue of `Cluster::observe`.
    Observe {
        reply: Sender<teechain_trace::Registry>,
    },
    /// Drain the node's flight-recorder ring.
    DrainTrace {
        reply: Sender<Vec<teechain_trace::TraceEvent>>,
    },
    /// Exit the event loop.
    Shutdown,
}

/// A node's unified input: network bytes, a fired wall-clock timer, or a
/// control request. The per-node loops keep their own timer heaps and
/// never see [`Input::TimerFired`]; the sharded scheduler's global timer
/// thread delivers fires through the inbox like any other input.
pub(crate) enum Input {
    Net(NodeId, Vec<u8>),
    TimerFired(u64),
    Req(LiveReq),
}

/// A cluster of Teechain nodes running live — each on its own OS thread,
/// exchanging real messages through a [`Transport`] backend, sharing one
/// (mutex-protected) simulated blockchain.
///
/// ```
/// use teechain::live::{LiveCluster, LiveConfig};
///
/// let net = LiveCluster::over_tcp(LiveConfig { n: 2, ..Default::default() })
///     .expect("bind localhost listeners");
/// let chan = net.standard_channel(0, 1, "demo", 1_000, 1);
/// let receipt = net.pay(0, chan, 250).expect("a real round trip over TCP");
/// assert_eq!(receipt.amount, 250);
/// net.shutdown();
/// ```
pub struct LiveCluster {
    /// Enclave identity of each node.
    pub ids: Vec<PublicKey>,
    /// The shared blockchain.
    pub chain: SharedChain,
    /// The shared *alternate* blockchain (cross-chain swap HTLCs land
    /// here; see [`crate::swap`]).
    pub chain2: SharedChain,
    /// Durable stores per node (persistent mode), harness-owned.
    pub stores: Vec<Option<SharedStore>>,
    completions: Vec<Arc<Mutex<Vec<Completion>>>>,
    epoch: Instant,
    runtime: Runtime,
}

/// The two live execution strategies behind [`LiveCluster`]'s one API.
enum Runtime {
    /// Thread-per-node: an event loop and a transport pump per node.
    PerNode {
        reqs: Vec<Sender<Input>>,
        stop: Arc<AtomicBool>,
        workers: Vec<JoinHandle<TeechainNode>>,
        pumps: Vec<JoinHandle<()>>,
    },
    /// Run-queue scheduler sharing a fixed worker pool across all nodes.
    Sharded(crate::live_sched::Sched),
}

impl LiveCluster {
    /// Builds a live cluster over in-process channel transports
    /// ([`ThreadNet`]).
    pub fn over_threads(cfg: LiveConfig) -> LiveCluster {
        let endpoints = ThreadNet::mesh(cfg.n);
        LiveCluster::new(cfg, endpoints)
    }

    /// Builds a live cluster over localhost TCP sockets ([`TcpNet`]).
    pub fn over_tcp(cfg: LiveConfig) -> std::io::Result<LiveCluster> {
        let endpoints = TcpNet::localhost(cfg.n)?;
        Ok(LiveCluster::new(cfg, endpoints))
    }

    /// Builds a live cluster on the sharded run-queue scheduler over the
    /// non-blocking reactor transport: `cfg.workers` worker threads (or
    /// the host parallelism when `0`) plus one poller and one timer
    /// thread, regardless of `cfg.n`. Same identities, same operation
    /// ids, same completion streams as the thread-per-node backends.
    ///
    /// # Panics
    ///
    /// Panics on [`DurabilityBackend::Replication`], like
    /// [`LiveCluster::new`].
    pub fn over_reactor(cfg: LiveConfig) -> std::io::Result<LiveCluster> {
        assert!(
            cfg.durability.auto_backups() == 0,
            "LiveCluster does not support committee-chain replication; \
             use DurabilityBackend::None or Persist"
        );
        let chain: SharedChain = Arc::new(Mutex::new(Chain::new()));
        let chain2: SharedChain = Arc::new(Mutex::new(Chain::new()));
        let (_root, nodes, stores, ids) =
            build_wired_nodes(cfg.n, cfg.seed, cfg.durability, &chain, &chain2);
        let epoch = Instant::now();
        let sched = crate::live_sched::Sched::launch(&cfg, nodes, epoch)?;
        let completions = sched.completion_handles();
        Ok(LiveCluster {
            ids,
            chain,
            chain2,
            stores,
            completions,
            epoch,
            runtime: Runtime::Sharded(sched),
        })
    }

    /// Builds a live cluster on the selected backend — the uniform entry
    /// point sweeps and equivalence suites iterate over.
    pub fn over(backend: LiveBackend, cfg: LiveConfig) -> std::io::Result<LiveCluster> {
        match backend {
            LiveBackend::Threads => Ok(LiveCluster::over_threads(cfg)),
            LiveBackend::Tcp => LiveCluster::over_tcp(cfg),
            LiveBackend::Reactor => LiveCluster::over_reactor(cfg),
        }
    }

    /// Builds a live cluster over caller-provided transport endpoints
    /// (endpoint `i` must carry `NodeId(i)`). Identities are
    /// pre-exchanged, exactly like the simulated harnesses do.
    ///
    /// # Panics
    ///
    /// Panics on an endpoint-count mismatch, and on
    /// [`DurabilityBackend::Replication`] — the live harness does not
    /// build or chain backup nodes, and running replication-mode
    /// enclaves with an empty committee would be silent zero fault
    /// tolerance (use the simulated [`crate::testkit::Cluster`] for
    /// replication studies).
    pub fn new<T: Transport>(cfg: LiveConfig, endpoints: Vec<T>) -> LiveCluster {
        assert_eq!(endpoints.len(), cfg.n, "one endpoint per node");
        assert!(
            cfg.durability.auto_backups() == 0,
            "LiveCluster does not support committee-chain replication; \
             use DurabilityBackend::None or Persist"
        );
        let chain: SharedChain = Arc::new(Mutex::new(Chain::new()));
        let chain2: SharedChain = Arc::new(Mutex::new(Chain::new()));
        // Nodes, identities and directories are built by the exact code
        // the simulated harness uses — before any thread exists.
        let (_root, nodes, stores, ids) =
            build_wired_nodes(cfg.n, cfg.seed, cfg.durability, &chain, &chain2);
        // One epoch for every node: in-protocol absolute times agree.
        let epoch = Instant::now();
        let stop = Arc::new(AtomicBool::new(false));
        let mut reqs = Vec::with_capacity(cfg.n);
        let mut completions = Vec::with_capacity(cfg.n);
        let mut workers = Vec::with_capacity(cfg.n);
        let mut pumps = Vec::with_capacity(cfg.n);
        for (i, (mut node, endpoint)) in nodes.into_iter().zip(endpoints).enumerate() {
            assert_eq!(endpoint.local_id(), NodeId(i as u32), "endpoint order");
            if cfg.tracing {
                node.tracer.configure(true, None);
            }
            let (tx, rx) = endpoint.split();
            let (input_tx, input_rx) = mpsc::channel::<Input>();
            let done = Arc::new(Mutex::new(Vec::new()));
            let worker = NodeLoop {
                id: NodeId(i as u32),
                node,
                tx,
                timers: BinaryHeap::new(),
                rng: Xoshiro256::new(cfg.seed ^ (0x11FE << 16) ^ i as u64),
                epoch,
                input: input_rx,
                done: done.clone(),
                sent_msgs: 0,
                sent_bytes: 0,
            };
            workers.push(
                std::thread::Builder::new()
                    .name(format!("teechain-live-n{i}"))
                    .spawn(move || worker.run())
                    .expect("spawn node thread"),
            );
            pumps.push(spawn_pump(rx, input_tx.clone(), stop.clone()));
            reqs.push(input_tx);
            completions.push(done);
        }
        LiveCluster {
            ids,
            chain,
            chain2,
            stores,
            completions,
            epoch,
            runtime: Runtime::PerNode {
                reqs,
                stop,
                workers,
                pumps,
            },
        }
    }

    /// Routes an input to node `i` on whichever runtime is active.
    fn send_input(&self, i: usize, input: Input) {
        match &self.runtime {
            Runtime::PerNode { reqs, .. } => {
                reqs[i].send(input).expect("node event loop is running");
            }
            Runtime::Sharded(sched) => sched.enqueue(i, input),
        }
    }

    /// Total OS threads the runtime itself owns (node loops and pumps,
    /// or scheduler workers plus the reactor poller and timer threads).
    /// For the per-node backends this is `2 * n`; for the reactor
    /// backend it is a constant independent of `n` — the property the
    /// 1,000-node bench rows record.
    pub fn runtime_threads(&self) -> usize {
        match &self.runtime {
            Runtime::PerNode { workers, pumps, .. } => workers.len() + pumps.len(),
            Runtime::Sharded(sched) => sched.worker_count + 2,
        }
    }

    /// Nanoseconds since the cluster epoch — the live analogue of
    /// simulated time (all in-protocol timestamps use this clock).
    pub fn now_ns(&self) -> u64 {
        self.epoch.elapsed().as_nanos() as u64
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.completions.len()
    }

    /// True if the cluster has no nodes.
    pub fn is_empty(&self) -> bool {
        self.completions.is_empty()
    }

    fn request_op(&self, i: usize, make: impl FnOnce(Sender<OpId>) -> LiveReq) -> OpId {
        let (reply_tx, reply_rx) = mpsc::channel();
        self.send_input(i, Input::Req(make(reply_tx)));
        reply_rx.recv().expect("node event loop replies")
    }

    // ---- Operation submission and resolution ----

    /// Submits `cmd` on node `i` as a correlated operation (counter
    /// throttling parks the op for the admission pump, as in the
    /// simulated harnesses).
    pub fn submit(&self, i: usize, cmd: Command) -> OpId {
        self.request_op(i, |reply| LiveReq::Submit {
            cmd,
            deadline_ns: None,
            reply,
        })
    }

    /// Submits with an absolute deadline on the cluster clock
    /// ([`LiveCluster::now_ns`]): a still-pending operation is declared
    /// dead at that instant by the node's own timer heap.
    pub fn submit_with_deadline(&self, i: usize, cmd: Command, deadline_ns: u64) -> OpId {
        self.request_op(i, |reply| LiveReq::Submit {
            cmd,
            deadline_ns: Some(deadline_ns),
            reply,
        })
    }

    /// Submits the composite open-channel operation on node `i`
    /// (in-enclave settlement address + channel proposal); completes with
    /// the [`ChannelId`].
    pub fn submit_open_channel(&self, i: usize, id: ChannelId, remote: PublicKey) -> OpId {
        self.request_op(i, |reply| LiveReq::OpenChannel { id, remote, reply })
    }

    /// Submits the composite fund-deposit operation on node `i` (mint on
    /// the shared chain, confirm, register); completes with the
    /// [`Deposit`].
    pub fn submit_fund_deposit(&self, i: usize, value: u64, m: u8) -> OpId {
        self.request_op(i, |reply| LiveReq::FundDeposit { value, m, reply })
    }

    /// Wraps an operation id in a typed pending token.
    pub fn pending<T: OpResult>(&self, op: OpId) -> Pending<T> {
        Pending::new(op)
    }

    /// Resolves a pending operation: blocks until its completion exists
    /// (polling the node's published stream) or `timeout` passes, at
    /// which point the operation is declared dead on its node and the
    /// typed [`OpError::Timeout`] completion is recorded — the live
    /// analogue of the simulator's quiescence resolution.
    pub fn wait<T: OpResult>(&self, p: Pending<T>, timeout: Duration) -> Result<T, OpError> {
        let i = p.op.node as usize;
        let deadline = Instant::now() + timeout;
        let outcome = loop {
            if let Some(c) = self.completions[i].lock().iter().find(|c| c.op == p.op) {
                break c.outcome.clone();
            }
            if Instant::now() >= deadline {
                let (reply_tx, reply_rx) = mpsc::channel();
                self.send_input(
                    i,
                    Input::Req(LiveReq::ResolveDead {
                        op: p.op,
                        reply: reply_tx,
                    }),
                );
                let _ = reply_rx.recv();
                // Either the node just recorded the timeout completion,
                // or the real one landed in the race window — read back
                // whichever won.
                break self.completions[i]
                    .lock()
                    .iter()
                    .find(|c| c.op == p.op)
                    .map(|c| c.outcome.clone())
                    .unwrap_or(Err(OpError::Timeout {
                        at_ns: self.now_ns(),
                    }));
            }
            std::thread::sleep(Duration::from_micros(200));
        };
        outcome.map(|out| {
            T::from_output(out).expect("completion output does not match the operation's type")
        })
    }

    /// Node `i`'s published completion stream so far, in resolution
    /// order.
    pub fn completions(&self, i: usize) -> Vec<Completion> {
        self.completions[i].lock().clone()
    }

    /// Node `i`'s published completions starting at `offset` — the
    /// stream is append-only (until drained), so polling drivers read
    /// incrementally instead of cloning the whole history every tick.
    pub fn completions_from(&self, i: usize, offset: usize) -> Vec<Completion> {
        let stream = self.completions[i].lock();
        stream.get(offset..).map(<[_]>::to_vec).unwrap_or_default()
    }

    /// Drains node `i`'s published completion stream, returning
    /// everything published so far. Sustained-traffic drivers (the live
    /// bench) consume completions this way so a long-running cluster
    /// holds memory proportional to in-flight work, not uptime. Drained
    /// completions are gone from [`LiveCluster::completions`],
    /// [`LiveCluster::completion_log`] and [`LiveCluster::wait`] — only
    /// drain operations you correlate yourself.
    pub fn take_completions(&self, i: usize) -> Vec<Completion> {
        std::mem::take(&mut *self.completions[i].lock())
    }

    /// The cluster-wide completion history, merged by
    /// `(time, node, seq)` like the simulated harnesses do. Times are
    /// real, so the interleaving is not deterministic — compare outcome
    /// *sets*, not orders, across substrates.
    pub fn completion_log(&self) -> Vec<Completion> {
        let streams: Vec<Vec<Completion>> = (0..self.len()).map(|i| self.completions(i)).collect();
        let views: Vec<&[Completion]> = streams.iter().map(|s| s.as_slice()).collect();
        crate::ops::merge_completions(&views)
    }

    // ---- Typed conveniences (mirror `testkit::Cluster`) ----

    /// Establishes a secure session between nodes `a` and `b`.
    pub fn connect(&self, a: usize, b: usize) {
        let remote = self.ids[b];
        let op = self.submit(a, Command::StartSession { remote });
        self.wait::<PublicKey>(Pending::new(op), DEFAULT_OP_TIMEOUT)
            .expect("session establishment failed");
    }

    /// Opens a payment channel between connected nodes; returns its id.
    pub fn open_channel(&self, a: usize, b: usize, label: &str) -> ChannelId {
        let id = ChannelId::from_label(label);
        let op = self.submit_open_channel(a, id, self.ids[b]);
        self.wait::<ChannelId>(Pending::new(op), DEFAULT_OP_TIMEOUT)
            .expect("channel open failed")
    }

    /// Funds an m-of-n deposit of `value` on node `i` and registers it.
    pub fn fund_deposit(&self, i: usize, value: u64, m: u8) -> Deposit {
        let op = self.submit_fund_deposit(i, value, m);
        self.wait::<Deposit>(Pending::new(op), DEFAULT_OP_TIMEOUT)
            .expect("fund deposit failed")
    }

    /// Approves `deposit` of node `a` with counterparty `b`, then
    /// associates it with `chan`.
    pub fn approve_and_associate(&self, a: usize, b: usize, chan: ChannelId, deposit: &Deposit) {
        let remote = self.ids[b];
        let op = self.submit(
            a,
            Command::ApproveDeposit {
                remote,
                outpoint: deposit.outpoint,
            },
        );
        self.wait::<crate::ops::OpOutput>(Pending::new(op), DEFAULT_OP_TIMEOUT)
            .expect("approve deposit failed");
        let op = self.submit(
            a,
            Command::AssociateDeposit {
                id: chan,
                outpoint: deposit.outpoint,
            },
        );
        self.wait::<crate::ops::OpOutput>(Pending::new(op), DEFAULT_OP_TIMEOUT)
            .expect("associate deposit failed");
    }

    /// Full channel setup: connect, open, fund `value` on side `a` with
    /// threshold `m`, approve and associate. Returns the channel id.
    pub fn standard_channel(
        &self,
        a: usize,
        b: usize,
        label: &str,
        value: u64,
        m: u8,
    ) -> ChannelId {
        self.connect(a, b);
        let chan = self.open_channel(a, b, label);
        let dep = self.fund_deposit(a, value, m);
        self.approve_and_associate(a, b, chan, &dep);
        chan
    }

    /// Submits a payment over `chan` from node `from`; returns the
    /// pending token (resolve with [`LiveCluster::wait`]).
    pub fn submit_pay(&self, from: usize, chan: ChannelId, amount: u64) -> Pending<Payment> {
        Pending::new(self.submit(
            from,
            Command::Pay {
                id: chan,
                amount,
                count: 1,
            },
        ))
    }

    /// Sends a payment and blocks for its typed completion.
    pub fn pay(&self, from: usize, chan: ChannelId, amount: u64) -> Result<Payment, OpError> {
        self.wait(self.submit_pay(from, chan, amount), DEFAULT_OP_TIMEOUT)
    }

    /// Issues a multi-hop payment from `path[0]` through `path[..]` over
    /// `channels` and blocks for its typed completion.
    pub fn pay_multihop(
        &self,
        path: &[usize],
        channels: &[ChannelId],
        amount: u64,
        label: &str,
    ) -> Result<Delivered, OpError> {
        let route = RouteId(teechain_crypto::sha256::tagged_hash(
            "teechain/route",
            &[label.as_bytes()],
        ));
        let hops: Vec<PublicKey> = path.iter().map(|&i| self.ids[i]).collect();
        let op = self.submit(
            path[0],
            Command::PayMultihop {
                route,
                hops,
                channels: channels.to_vec(),
                amount,
            },
        );
        self.wait(Pending::new(op), DEFAULT_OP_TIMEOUT)
    }

    /// Settles a channel from node `i` and blocks for the terminal
    /// [`Settlement`] (off-chain or on-chain).
    pub fn settle_channel(&self, i: usize, chan: ChannelId) -> Result<Settlement, OpError> {
        let op = self.submit(i, Command::Settle { id: chan });
        self.wait(Pending::new(op), DEFAULT_OP_TIMEOUT)
    }

    /// Initiates a cross-chain atomic swap from node `from` and blocks
    /// for its terminal [`crate::swap::SwapOutcome`].
    pub fn swap(
        &self,
        from: usize,
        chan: ChannelId,
        label: &str,
        amount: u64,
        alt_amount: u64,
        timeout_blocks: u64,
    ) -> Result<crate::swap::SwapOutcome, OpError> {
        let op = self.submit(
            from,
            Command::Swap {
                swap: crate::types::SwapId::from_label(label),
                channel: chan,
                amount,
                alt_amount,
                timeout_blocks,
            },
        );
        self.wait(Pending::new(op), DEFAULT_OP_TIMEOUT)
    }

    /// On-chain balance of a settlement key.
    pub fn chain_balance(&self, pk: &PublicKey) -> u64 {
        self.chain.lock().balance_p2pk(pk)
    }

    // ---- Observability (the `teechain-trace` surface) ----

    /// Snapshots the cluster-wide metrics registry — every node's
    /// counters, admission totals, queue high-watermarks and the live
    /// loops' transport counters, merged. Each node answers from its own
    /// event loop, so the snapshot is per-node consistent (not a global
    /// instant).
    pub fn observe(&self) -> teechain_trace::Snapshot {
        let mut reg = teechain_trace::Registry::new();
        for i in 0..self.len() {
            let (reply_tx, reply_rx) = mpsc::channel();
            self.send_input(i, Input::Req(LiveReq::Observe { reply: reply_tx }));
            reg.merge(&reply_rx.recv().expect("node event loop replies"));
        }
        reg.snapshot()
    }

    /// Drains every node's flight ring into one merged stream ordered by
    /// `(ts_ns, node)`. Timestamps are wall-clock ns since the cluster
    /// epoch, so the order is real-time (and, unlike sim traces, not
    /// reproducible across runs).
    pub fn drain_trace(&self) -> Vec<teechain_trace::TraceEvent> {
        let streams: Vec<Vec<teechain_trace::TraceEvent>> = (0..self.len())
            .map(|i| {
                let (reply_tx, reply_rx) = mpsc::channel();
                self.send_input(i, Input::Req(LiveReq::DrainTrace { reply: reply_tx }));
                reply_rx.recv().expect("node event loop replies")
            })
            .collect();
        teechain_trace::merge_events(streams)
    }

    /// Stops the runtime (event loops and pumps, or the scheduler's
    /// workers, timer and poller), joins all threads and returns the
    /// final nodes (for balance and state assertions).
    pub fn shutdown(self) -> Vec<TeechainNode> {
        match self.runtime {
            Runtime::PerNode {
                reqs,
                stop,
                workers,
                pumps,
            } => {
                stop.store(true, Ordering::Relaxed);
                for req in &reqs {
                    let _ = req.send(Input::Req(LiveReq::Shutdown));
                }
                drop(reqs);
                let nodes: Vec<TeechainNode> = workers
                    .into_iter()
                    .map(|w| w.join().expect("node thread panicked"))
                    .collect();
                for pump in pumps {
                    pump.join().expect("pump thread panicked");
                }
                nodes
            }
            Runtime::Sharded(sched) => sched.shutdown(),
        }
    }
}

/// Forwards inbound transport messages into a node's input queue until
/// the cluster stops or the transport closes.
fn spawn_pump<R: TransportRx>(
    mut rx: R,
    input: Sender<Input>,
    stop: Arc<AtomicBool>,
) -> JoinHandle<()> {
    std::thread::spawn(move || {
        while !stop.load(Ordering::Relaxed) {
            match rx.recv_timeout(Duration::from_millis(50)) {
                Ok(Some((from, msg))) => {
                    if input.send(Input::Net(from, msg)).is_err() {
                        break; // Event loop exited.
                    }
                }
                Ok(None) => {}   // Timeout tick: re-check stop.
                Err(_) => break, // Transport closed: nothing more can arrive.
            }
        }
    })
}

/// One node's live event loop: the unmodified [`TeechainNode`] plus a
/// wall-clock timer heap and a transport sender.
struct NodeLoop<Tx: TransportTx> {
    id: NodeId,
    node: TeechainNode,
    tx: Tx,
    /// Armed timers as `Reverse((fire_at_ns, token))` — a min-heap.
    timers: BinaryHeap<Reverse<(u64, u64)>>,
    rng: Xoshiro256,
    epoch: Instant,
    input: Receiver<Input>,
    /// Published completion stream (shared with the harness).
    done: Arc<Mutex<Vec<Completion>>>,
    /// Transport messages this loop put on the wire (the live analogue
    /// of the simulator's `SimStats.messages`).
    sent_msgs: u64,
    /// Transport payload bytes sent.
    sent_bytes: u64,
}

/// Longest the event loop sleeps with no timer armed (keeps shutdown and
/// stray wakeups bounded without busy-waiting).
const IDLE_WAIT: Duration = Duration::from_millis(25);

impl<Tx: TransportTx> NodeLoop<Tx> {
    fn now_ns(&self) -> u64 {
        self.epoch.elapsed().as_nanos() as u64
    }

    /// Performs the actions a handler emitted: real sends, real timers;
    /// `Busy` is simulation-only accounting and is dropped.
    fn perform(&mut self, now_ns: u64, actions: Vec<NodeAction>) {
        for action in actions {
            match action {
                NodeAction::Send { to, msg } => {
                    // A dead peer is indistinguishable from a crashed
                    // machine: traffic to it is dropped, exactly like the
                    // simulator's offline handling.
                    self.sent_msgs += 1;
                    self.sent_bytes += msg.len() as u64;
                    let _ = self.tx.send(to, msg);
                }
                NodeAction::Timer { delay_ns, token } => {
                    self.timers.push(Reverse((now_ns + delay_ns, token)));
                }
                NodeAction::Busy { .. } => {}
            }
        }
    }

    /// Drains the node's completion stream into the published one. The
    /// host's internal notification stream has no live-mode subscriber,
    /// so it is discarded here — a sustained-traffic node must not grow
    /// it without bound (the sim bench clears it the same way).
    fn publish(&mut self) {
        let fresh = std::mem::take(&mut self.node.completions);
        if !fresh.is_empty() {
            self.done.lock().extend(fresh);
        }
        self.node.events.clear();
    }

    /// Runs a handler through [`drive`] at the current wall-clock time,
    /// performs its actions and publishes completions.
    fn dispatch<R>(
        &mut self,
        f: impl FnOnce(&mut TeechainNode, &mut teechain_net::Ctx<'_>) -> R,
    ) -> R {
        let now = self.now_ns();
        let (r, actions) = drive(&mut self.node, self.id, now, &mut self.rng, f);
        self.perform(now, actions);
        self.publish();
        r
    }

    /// Fires every timer due at or before now.
    fn fire_due_timers(&mut self) {
        loop {
            let now = self.now_ns();
            match self.timers.peek() {
                Some(Reverse((at, _))) if *at <= now => {
                    let Reverse((_, token)) = self.timers.pop().expect("peeked");
                    self.dispatch(|node, ctx| node.handle_timer(ctx, token));
                }
                _ => break,
            }
        }
    }

    fn handle_req(&mut self, req: LiveReq) -> bool {
        match req {
            LiveReq::Submit {
                cmd,
                deadline_ns,
                reply,
            } => {
                let op = self.dispatch(|node, ctx| node.submit_op(ctx, cmd, deadline_ns));
                let _ = reply.send(op);
            }
            LiveReq::OpenChannel { id, remote, reply } => {
                let op = self.dispatch(|node, ctx| node.submit_open_channel(ctx, id, remote));
                let _ = reply.send(op);
            }
            LiveReq::FundDeposit { value, m, reply } => {
                let op = self.dispatch(|node, ctx| node.submit_fund_deposit(ctx, value, m));
                let _ = reply.send(op);
            }
            LiveReq::ResolveDead { op, reply } => {
                let now = self.now_ns();
                let resolved = self.node.resolve_dead_op(op, now).is_some();
                self.publish();
                let _ = reply.send(resolved);
            }
            LiveReq::Observe { reply } => {
                let mut reg = self.node.registry();
                reg.counter("live.sent_msgs", self.sent_msgs);
                reg.counter("live.sent_bytes", self.sent_bytes);
                let _ = reply.send(reg);
            }
            LiveReq::DrainTrace { reply } => {
                let _ = reply.send(self.node.tracer.drain());
            }
            LiveReq::Shutdown => return false,
        }
        true
    }

    fn run(mut self) -> TeechainNode {
        loop {
            self.fire_due_timers();
            let wait = match self.timers.peek() {
                Some(Reverse((at, _))) => {
                    Duration::from_nanos(at.saturating_sub(self.now_ns())).min(IDLE_WAIT)
                }
                None => IDLE_WAIT,
            };
            match self.input.recv_timeout(wait) {
                Ok(Input::Net(from, msg)) => {
                    self.dispatch(|node, ctx| node.handle_wire(ctx, from, msg));
                }
                // Only the sharded scheduler routes timer fires through
                // the inbox; this loop keeps its own heap. Handle it
                // anyway so the input type stays total.
                Ok(Input::TimerFired(token)) => {
                    self.dispatch(|node, ctx| node.handle_timer(ctx, token));
                }
                Ok(Input::Req(req)) => {
                    if !self.handle_req(req) {
                        break;
                    }
                }
                Err(RecvTimeoutError::Timeout) => {}
                Err(RecvTimeoutError::Disconnected) => break,
            }
        }
        self.publish();
        self.node
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::ProtocolError;

    #[test]
    fn live_payment_over_threads() {
        let net = LiveCluster::over_threads(LiveConfig {
            n: 2,
            ..LiveConfig::default()
        });
        let chan = net.standard_channel(0, 1, "live-unit", 1_000, 1);
        let receipt = net.pay(0, chan, 250).expect("payment completes");
        assert_eq!(receipt.amount, 250);
        // Typed local rejection: overspending the channel balance.
        let err = net.pay(0, chan, 10_000).expect_err("overspend refused");
        assert_eq!(err, OpError::Rejected(ProtocolError::InsufficientBalance));
        let nodes = net.shutdown();
        let c = nodes[0]
            .enclave
            .program()
            .and_then(|p| p.channel(&chan))
            .expect("channel exists");
        assert_eq!((c.my_bal, c.remote_bal), (750, 250));
    }

    #[test]
    fn live_identities_match_simulated_cluster() {
        let live = LiveCluster::over_threads(LiveConfig {
            n: 3,
            seed: 42,
            ..LiveConfig::default()
        });
        let sim = crate::testkit::Cluster::new(crate::testkit::ClusterConfig {
            n: 3,
            seed: 42,
            ..Default::default()
        });
        assert_eq!(live.ids, sim.ids);
        live.shutdown();
    }

    #[test]
    fn wait_timeout_records_typed_completion_exactly_once() {
        let net = LiveCluster::over_threads(LiveConfig {
            n: 2,
            ..LiveConfig::default()
        });
        // A session to a peer that never answers cannot be created here
        // (all peers answer), so use an operation that waits on a
        // nonexistent response: pay on an unknown channel is rejected
        // synchronously — instead park an op with a 1 ns deadline.
        let op = net.submit_with_deadline(
            0,
            Command::StartSession { remote: net.ids[1] },
            1, // Already in the past: dies on the node's own timer.
        );
        let res = net.wait::<PublicKey>(Pending::new(op), Duration::from_secs(5));
        match res {
            Err(OpError::Timeout { .. }) => {}
            // The handshake can legitimately win the race on a fast
            // machine: the deadline timer and the response arrive through
            // the same loop.
            Ok(_) => {}
            other => panic!("unexpected outcome: {other:?}"),
        }
        let stream = net.completions(0);
        assert_eq!(
            stream.iter().filter(|c| c.op == op).count(),
            1,
            "exactly one completion"
        );
        net.shutdown();
    }
}
