//! Force-freeze chain replication (Alg. 3) and committee chains (§6.1).
//!
//! Every state mutation on a primary produces [`StateDelta`]s. Before any
//! externally visible effect of the mutation is released, the deltas must
//! propagate down the backup chain and be acknowledged (Alg. 3 line 24) —
//! this is what makes a backup's state authoritative on failover, and what
//! adds one chain traversal of latency per operation (Tables 1 and 2).
//!
//! *Force-freeze*: reading state from a backup (failover) freezes the whole
//! chain — every member stops accepting updates, so the primary cannot
//! continue executing payments against a state the backup has already
//! exposed (the roll-back/forking attack the paper defends against, §6).
//!
//! *Committees*: each backup contributes a blockchain key; deposits pay
//! into m-of-n multisig addresses over those keys, so spending requires m
//! committee signatures — tolerating up to `m-1` compromised TEEs.

use crate::channel::Channel;
use crate::enclave::{Effect, HostEvent, Outcome, TeechainEnclave};
use crate::msg::{ProtocolMsg, StateDelta};
use crate::settle;
use crate::types::{ChannelId, Deposit, ProtocolError, RouteId};
use std::collections::{BTreeMap, HashMap};
use teechain_blockchain::{OutPoint, Transaction};
use teechain_crypto::schnorr::{PrivateKey, PublicKey};
use teechain_tee::EnclaveEnv;

/// State replicated from our upstream (the node we back up).
#[derive(Default)]
pub struct ReplicaState {
    /// Replicated channels (upstream's perspective).
    pub channels: HashMap<ChannelId, Channel>,
    /// Replicated deposits.
    pub deposits: HashMap<OutPoint, Deposit>,
    /// Replicated deposit keys (1-of-1 deposits and shared keys).
    pub keys: HashMap<PublicKey, PrivateKey>,
    /// Replicated multi-hop intermediate settlements.
    pub taus: HashMap<RouteId, Transaction>,
    /// Highest update sequence applied.
    pub applied_seq: u64,
}

/// A settlement awaiting committee co-signatures.
pub struct SigCollect {
    /// Context channel id (zeroed for deposit releases).
    pub id: ChannelId,
    /// The partially signed transaction.
    pub tx: Transaction,
}

/// Replication role state for one enclave.
#[derive(Default)]
pub struct Replication {
    /// The node we replicate *to* (our backup / downstream).
    pub backup: Option<PublicKey>,
    /// The node we replicate *from* (our primary / upstream).
    pub upstream: Option<PublicKey>,
    /// A backup we asked to attach but which has not acked yet.
    pub pending_backup: Option<PublicKey>,
    /// Blockchain keys of chain members below us (committee candidates).
    pub chain_keys: Vec<PublicKey>,
    /// Our own committee (blockchain) key when acting as a backup.
    pub my_member_key: Option<PublicKey>,
    /// Next update sequence to send downstream.
    pub send_seq: u64,
    /// Effects gated on downstream acknowledgement, keyed by sequence.
    pub pending: BTreeMap<u64, Vec<Effect>>,
    /// Deltas staged by the currently executing handler.
    pub staged: Vec<StateDelta>,
    /// Replica of our upstream's state.
    pub replica: ReplicaState,
}

impl ReplicaState {
    fn apply(&mut self, delta: StateDelta) {
        match delta {
            StateDelta::Channel(c) => {
                self.channels.insert(c.id, *c);
            }
            StateDelta::Pay {
                id,
                my_delta,
                remote_delta,
            } => {
                if let Some(c) = self.channels.get_mut(&id) {
                    c.my_bal = c.my_bal.wrapping_add_signed(my_delta);
                    c.remote_bal = c.remote_bal.wrapping_add_signed(remote_delta);
                }
            }
            StateDelta::Stage { id, stage } => {
                if let Some(c) = self.channels.get_mut(&id) {
                    c.stage = stage;
                }
            }
            StateDelta::Deposit { dep, key, mine: _ } => {
                if let Some(bytes) = key {
                    if let Some(sk) = PrivateKey::from_bytes(&bytes) {
                        self.keys.insert(sk.public_key(), sk);
                    }
                }
                self.deposits.insert(dep.outpoint, dep);
            }
            StateDelta::RemoveDeposit(op) => {
                self.deposits.remove(&op);
            }
            StateDelta::Tau { route, tau } => match tau {
                Some(tx) => {
                    self.taus.insert(route, tx);
                }
                None => {
                    self.taus.remove(&route);
                }
            },
            StateDelta::CloseChannel(id) => {
                if let Some(c) = self.channels.get_mut(&id) {
                    c.closed = true;
                }
            }
            StateDelta::Swap(_) => {
                // Swap progress is not needed to settle replicated
                // channels: the balance movement of a redeem arrives as
                // its own `Pay` delta in the same update, and the HTLC
                // side lives on the alternate chain under the primary's
                // identity key, which backups do not hold.
            }
        }
    }

    /// True if no replicated channel currently contains `op` (i.e. the
    /// deposit is free and may be released by its owner).
    pub fn deposit_is_free(&self, op: &OutPoint) -> bool {
        !self
            .channels
            .values()
            .any(|c| !c.closed && (c.my_deps.contains(op) || c.remote_deps.contains(op)))
    }
}

impl TeechainEnclave {
    pub(crate) fn cmd_attach_backup(&mut self, backup: PublicKey) -> Outcome {
        self.require_unfrozen()?;
        self.session_mut(&backup)?;
        if self.rep.backup.is_some() || self.rep.pending_backup.is_some() {
            return Err(ProtocolError::ReplicationError); // Chain tail only.
        }
        self.rep.pending_backup = Some(backup);
        let msg = ProtocolMsg::RepAssign;
        Ok(vec![self.seal_to(&backup, &msg)?])
    }

    pub(crate) fn on_rep_assign(&mut self, env: &mut EnclaveEnv, from: PublicKey) -> Outcome {
        self.require_unfrozen()?;
        if self.rep.upstream.is_some() {
            return Err(ProtocolError::ReplicationError); // Already a backup.
        }
        self.rep.upstream = Some(from);
        // Generate our committee (blockchain) key inside the TEE.
        let member_key = match self.rep.my_member_key {
            Some(k) => k,
            None => {
                let sk = PrivateKey::from_seed(&env.random_bytes32());
                let pk = self.book.insert_key(sk);
                self.rep.my_member_key = Some(pk);
                pk
            }
        };
        let msg = ProtocolMsg::RepAssignAck { member_key };
        Ok(vec![self.seal_to(&from, &msg)?])
    }

    pub(crate) fn on_rep_assign_ack(&mut self, from: PublicKey, member_key: PublicKey) -> Outcome {
        // Either our pending backup confirmed, or a new member deeper in
        // the chain is propagating its key upward.
        if self.rep.pending_backup == Some(from) {
            self.rep.pending_backup = None;
            self.rep.backup = Some(from);
        } else if self.rep.backup != Some(from) {
            return Err(ProtocolError::ReplicationError);
        }
        self.rep.chain_keys.push(member_key);
        let mut effects = Vec::new();
        if let Some(up) = self.rep.upstream {
            // Propagate the new member's key to the chain head.
            let msg = ProtocolMsg::RepAssignAck { member_key };
            effects.push(self.seal_to(&up, &msg)?);
        }
        effects.push(Effect::Event(HostEvent::BackupAttached(from)));
        Ok(effects)
    }

    /// The committee for a new deposit: a fresh per-deposit key plus the
    /// blockchain keys of every chain member, threshold `m`.
    pub(crate) fn cmd_new_committee(&mut self, env: &mut EnclaveEnv, m: u8) -> Outcome {
        self.require_unfrozen()?;
        let seed = env.random_bytes32();
        let own = self.book.insert_key(PrivateKey::from_seed(&seed));
        let mut member_keys = vec![own];
        member_keys.extend(self.rep.chain_keys.iter().copied());
        if m == 0 || (m as usize) > member_keys.len() {
            return Err(ProtocolError::ReplicationError);
        }
        let spec = crate::types::CommitteeSpec { m, member_keys };
        Ok(vec![Effect::Event(HostEvent::CommitteeAddress(spec))])
    }

    pub(crate) fn on_rep_update(
        &mut self,
        from: PublicKey,
        seq: u64,
        deltas: Vec<StateDelta>,
    ) -> Outcome {
        if self.rep.upstream != Some(from) {
            return Err(ProtocolError::ReplicationError);
        }
        if self.frozen {
            // A frozen backup accepts no further updates (force-freeze):
            // the primary's effects stay gated forever, which is the point.
            return Err(ProtocolError::Frozen);
        }
        if self.rep.backup.is_some() {
            // Forward down the chain first; ack upstream only when the
            // tail has applied (handled in on_rep_ack).
            for d in &deltas {
                self.rep.replica.apply(d.clone());
            }
            self.rep.replica.applied_seq = seq;
            let backup = self.rep.backup.expect("checked");
            let msg = ProtocolMsg::RepUpdate { seq, deltas };
            Ok(vec![self.seal_to(&backup, &msg)?])
        } else {
            for d in deltas {
                self.rep.replica.apply(d);
            }
            self.rep.replica.applied_seq = seq;
            let msg = ProtocolMsg::RepAck { seq };
            Ok(vec![self.seal_to(&from, &msg)?])
        }
    }

    pub(crate) fn on_rep_ack(&mut self, from: PublicKey, seq: u64) -> Outcome {
        if self.rep.backup != Some(from) {
            return Err(ProtocolError::ReplicationError);
        }
        if let Some(up) = self.rep.upstream {
            // Intermediate chain member: pass the ack toward the head.
            let msg = ProtocolMsg::RepAck { seq };
            return Ok(vec![self.seal_to(&up, &msg)?]);
        }
        // Chain head: release all effects gated at or below `seq`
        // (acks are cumulative because the chain is FIFO).
        let released: Vec<u64> = self.rep.pending.range(..=seq).map(|(k, _)| *k).collect();
        let mut out = Vec::new();
        for k in released {
            if let Some(effects) = self.rep.pending.remove(&k) {
                out.extend(effects);
            }
        }
        Ok(out)
    }

    pub(crate) fn on_rep_freeze(&mut self, from: PublicKey) -> Outcome {
        if self.rep.upstream != Some(from) && self.rep.backup != Some(from) {
            return Err(ProtocolError::ReplicationError);
        }
        self.propagate_freeze(Some(from))
    }

    fn propagate_freeze(&mut self, except: Option<PublicKey>) -> Outcome {
        if self.frozen {
            return Ok(vec![]);
        }
        self.frozen = true;
        let mut effects = Vec::new();
        for peer in [self.rep.upstream, self.rep.backup].into_iter().flatten() {
            if Some(peer) != except {
                effects.push(self.seal_to(&peer, &ProtocolMsg::RepFreeze)?);
            }
        }
        effects.push(Effect::Event(HostEvent::Frozen));
        Ok(effects)
    }

    pub(crate) fn cmd_read_replica(&mut self) -> Outcome {
        if self.rep.upstream.is_none() {
            return Err(ProtocolError::ReplicationError);
        }
        // Reading a backup breaks the chain: everything freezes (§6).
        let mut effects = self.propagate_freeze(None)?;
        effects.push(Effect::Event(HostEvent::ReplicaState {
            channels: self.rep.replica.channels.len(),
            deposits: self.rep.replica.deposits.len(),
            applied_seq: self.rep.replica.applied_seq,
        }));
        Ok(effects)
    }

    pub(crate) fn cmd_settle_from_replica(&mut self) -> Outcome {
        if self.rep.upstream.is_none() {
            return Err(ProtocolError::ReplicationError);
        }
        if !self.frozen {
            // Settling from a replica is a read: it must freeze first.
            let _ = self.propagate_freeze(None)?;
        }
        let channels: Vec<Channel> = self
            .rep
            .replica
            .channels
            .values()
            .filter(|c| !c.closed)
            .cloned()
            .collect();
        let mut effects = Vec::new();
        for chan in channels {
            let tx = settle::current_settlement_tx(&chan);
            self.finish_settlement(chan.id, tx, &mut effects);
        }
        Ok(effects)
    }

    pub(crate) fn cmd_co_sign(&mut self, req_id: u64, tx: Transaction) -> Outcome {
        // Byzantine guard (§6.1): only sign settlements that exactly match
        // replicated state — a compromised primary cannot obtain committee
        // signatures for a stale or inflated settlement.
        let txid = tx.txid();
        let mut valid = false;
        // (1) Current settlement of a replicated channel.
        for chan in self.rep.replica.channels.values() {
            if settle::current_settlement_tx(chan).txid() == txid {
                valid = true;
                break;
            }
        }
        // (2) A replicated multi-hop intermediate settlement τ.
        if !valid {
            valid = self.rep.replica.taus.values().any(|t| t.txid() == txid);
        }
        // (3) Release of a deposit that is free in the replica.
        if !valid && tx.inputs.len() == 1 {
            let op = tx.inputs[0].prevout;
            if self.rep.replica.deposits.contains_key(&op) && self.rep.replica.deposit_is_free(&op)
            {
                valid = true;
            }
        }
        if !valid {
            return Ok(vec![Effect::Event(HostEvent::CoSignResult {
                req_id,
                sigs: vec![],
                refused: true,
            })]);
        }
        let sighash = tx.sighash();
        let mut sigs = Vec::new();
        for (idx, input) in tx.inputs.iter().enumerate() {
            let dep = self
                .book
                .deposit_of(&input.prevout)
                .or_else(|| self.rep.replica.deposits.get(&input.prevout));
            let Some(dep) = dep else { continue };
            for member in &dep.committee.member_keys {
                let sk = self
                    .book
                    .keys
                    .get(member)
                    .or_else(|| self.rep.replica.keys.get(member));
                if let Some(sk) = sk {
                    sigs.push((idx as u32, teechain_crypto::schnorr::sign(sk, &sighash)));
                }
            }
        }
        Ok(vec![Effect::Event(HostEvent::CoSignResult {
            req_id,
            sigs,
            refused: false,
        })])
    }

    pub(crate) fn cmd_add_co_sigs(
        &mut self,
        req_id: u64,
        sigs: Vec<(u32, teechain_crypto::schnorr::Signature)>,
    ) -> Outcome {
        let Some(collect) = self.sig_collects.get_mut(&req_id) else {
            return Err(ProtocolError::BadMessage);
        };
        for (idx, sig) in sigs {
            if let Some(input) = collect.tx.inputs.get_mut(idx as usize) {
                if !input.witness.contains(&sig) {
                    input.witness.push(sig);
                }
            }
        }
        let tx = collect.tx.clone();
        let id = collect.id;
        let deposit_of = |op: &OutPoint| {
            self.book
                .deposit_of(op)
                .or_else(|| self.rep.replica.deposits.get(op))
        };
        if settle::threshold_met(&tx, deposit_of) {
            self.sig_collects.remove(&req_id);
            Ok(vec![
                Effect::Event(HostEvent::SettlementBroadcast {
                    id,
                    txid: tx.txid(),
                }),
                Effect::Broadcast(tx),
            ])
        } else {
            Ok(vec![])
        }
    }
}
