//! Replication, committee and persistence tests (§6).

use teechain::enclave::Command;
use teechain::ops::{OpError, OpOutput};
use teechain::testkit::{Cluster, ClusterConfig};
use teechain::ProtocolError;

#[test]
fn backup_attachment_builds_committee() {
    let mut c = Cluster::functional(3);
    c.attach_backup(0, 1); // 0 → 1
    c.attach_backup(1, 2); // chain: 0 → 1 → 2
                           // The head's typed attach completed, and it also learned of the
                           // second chain member (an unsolicited notification on its stream).
    let attached = c
        .node(0)
        .events
        .iter()
        .filter(|(_, e)| matches!(e, teechain::HostEvent::BackupAttached(_)))
        .count();
    assert_eq!(attached, 2, "head learns of both chain members");
}

#[test]
fn replicated_payments_reach_backup() {
    let mut c = Cluster::functional(3);
    c.attach_backup(0, 2);
    let chan = c.standard_channel(0, 1, "c1", 1000, 1);
    c.pay(0, chan, 150).unwrap();
    assert_eq!(c.balances(0, chan), (850, 150));
    // The backup's replica mirrors the channel.
    let replica_bal = {
        let p = c.node(2).enclave.program().unwrap();
        let chan_replica = p.replica_channel(&chan).expect("replicated channel");
        (chan_replica.my_bal, chan_replica.remote_bal)
    };
    assert_eq!(replica_bal, (850, 150));
}

#[test]
fn payment_ack_gated_on_replication() {
    // With a backup attached, the Pay message must not leave the primary
    // before the backup acks — so a dead backup stalls payments without
    // losing funds (liveness sacrificed, never safety).
    let mut c = Cluster::functional(3);
    c.attach_backup(0, 2);
    let chan = c.standard_channel(0, 1, "c1", 1000, 1);
    // Crash the backup's enclave: updates will go unacknowledged.
    c.node_mut(2).enclave.crash();
    // Force-freeze replication holds the Pay message at the primary: no
    // terminal response ever arrives, so the operation is declared dead
    // at quiescence — the typed form of "the ack never came".
    let err = c.pay(0, chan, 100).unwrap_err();
    assert!(matches!(err, OpError::Timeout { .. }), "{err:?}");
    assert_eq!(c.balances(1, chan), (0, 1000), "receiver saw nothing");
}

#[test]
fn crash_failover_settles_from_replica() {
    // Primary crashes; the user reads the backup (force-freeze) and
    // settles every replicated channel on chain — balance correctness
    // under crash faults.
    let mut c = Cluster::functional(3);
    c.attach_backup(0, 2);
    let chan = c.standard_channel(0, 1, "c1", 1000, 1);
    c.pay(0, chan, 400).unwrap();
    let my_settle = {
        let p = c.node(0).enclave.program().unwrap();
        p.channel(&chan).unwrap().my_settlement
    };
    // Primary is gone.
    c.node_mut(0).enclave.crash();
    // Failover via the backup: the replica read reports typed state.
    let out = c.exec(2, Command::ReadReplica);
    assert!(
        matches!(out, OpOutput::ReplicaState { channels: 1, .. }),
        "{out:?}"
    );
    c.exec(2, Command::SettleFromReplica);
    c.mine(1);
    assert_eq!(c.chain_balance(&my_settle), 600);
}

#[test]
fn frozen_backup_rejects_further_updates() {
    let mut c = Cluster::functional(3);
    c.attach_backup(0, 2);
    let chan = c.standard_channel(0, 1, "c1", 1000, 1);
    c.pay(0, chan, 100).unwrap();
    // Freeze via a replica read.
    c.exec(2, Command::ReadReplica);
    c.settle_network();
    assert!(c.node(2).enclave.program().unwrap().is_frozen());
    // The freeze propagated up the chain to the primary.
    assert!(c.node(0).enclave.program().unwrap().is_frozen());
    // Frozen primary refuses new payments (roll-back defence, §6).
    assert_eq!(
        c.pay(0, chan, 10).unwrap_err(),
        OpError::Rejected(ProtocolError::Frozen)
    );
}

#[test]
fn committee_two_of_two_settlement() {
    // A 2-of-2 committee deposit: settlement needs the backup's signature.
    let mut c = Cluster::functional(3);
    c.attach_backup(0, 2);
    c.connect(0, 1);
    let chan = c.open_channel(0, 1, "c1");
    let dep = c.fund_deposit(0, 800, 2); // m=2, n=2 (self + backup)
    assert_eq!(dep.committee.m, 2);
    assert_eq!(dep.committee.n(), 2);
    c.approve_and_associate(0, 1, chan, &dep);
    c.pay(0, chan, 300).unwrap();
    let my_settle = {
        let p = c.node(0).enclave.program().unwrap();
        p.channel(&chan).unwrap().my_settlement
    };
    // The settle operation's completion spans the whole co-sign round
    // trip: it resolves only once the threshold is met and the
    // settlement is broadcast.
    let s = c.settle_channel(0, chan).unwrap();
    assert!(matches!(s.kind, teechain::SettleKind::OnChain(_)));
    c.mine(1);
    assert_eq!(c.chain_balance(&my_settle), 500);
}

#[test]
fn byzantine_primary_cannot_inflate_settlement() {
    // Compromise the primary TEE and try to settle the channel at a stale
    // (pre-payment) state. The committee member's replica knows the true
    // balances and refuses to co-sign, so the theft fails.
    let mut c = Cluster::functional(3);
    c.attach_backup(0, 2);
    c.connect(0, 1);
    let chan = c.open_channel(0, 1, "c1");
    let dep = c.fund_deposit(0, 800, 2);
    c.approve_and_associate(0, 1, chan, &dep);
    c.pay(0, chan, 300).unwrap(); // Honest state: (500, 300).
                                  // Attacker extracts the channel and rolls back the payment.
    let forged_tx = {
        let (program, _env) = c.node_mut(0).enclave.compromise().unwrap();
        let mut stale = program.channel(&chan).unwrap().clone();
        stale.my_bal = 800; // Pretend the payment never happened.
        stale.remote_bal = 0;
        teechain::settle::current_settlement_tx(&stale)
    };
    // The attacker asks the committee member to co-sign the stale
    // settlement directly; the refusal is the operation's typed output.
    let out = c.exec(
        2,
        Command::CoSign {
            req_id: 99,
            tx: forged_tx.clone(),
        },
    );
    assert_eq!(
        out,
        OpOutput::CoSigned {
            req_id: 99,
            refused: true
        },
        "committee member must refuse the stale settlement"
    );
    // And the chain rejects the forged tx outright (1 of 2 signatures).
    let submit = {
        let mut tx = forged_tx;
        // The attacker signs with every key it extracted.
        let (program, _env) = c.node_mut(0).enclave.compromise().unwrap();
        teechain::settle::sign_with_book(&mut tx, program.book_ref());
        c.chain.lock().submit(tx)
    };
    assert!(submit.is_err(), "chain must reject sub-threshold witness");
}

#[test]
fn one_of_two_committee_tolerates_crash_but_not_byzantine() {
    // m=1, n=2: crash tolerant (backup can settle alone) — but a
    // compromised backup could steal, which is why the paper recommends
    // m ≥ 2 for Byzantine tolerance.
    let mut c = Cluster::functional(3);
    c.attach_backup(0, 2);
    c.connect(0, 1);
    let chan = c.open_channel(0, 1, "c1");
    let dep = c.fund_deposit(0, 500, 1); // m=1, n=2
    assert_eq!(dep.committee.n(), 2);
    c.approve_and_associate(0, 1, chan, &dep);
    c.pay(0, chan, 200).unwrap();
    c.node_mut(0).enclave.crash();
    c.exec(2, Command::SettleFromReplica);
    c.mine(1);
    let my_settle = {
        let p = c.node(2).enclave.program().unwrap();
        p.replica_channel(&chan).unwrap().my_settlement
    };
    assert_eq!(c.chain_balance(&my_settle), 300);
}

// ---- Persistent storage mode (§6.2) ----

#[test]
fn persist_mode_throttle_is_absorbed_by_the_pump() {
    let mut c = Cluster::new(ClusterConfig {
        n: 2,
        durability: teechain::DurabilityBackend::eager_persist(),
        ..ClusterConfig::default()
    });
    let chan = c.standard_channel(0, 1, "c1", 1000, 1);
    // Let the setup's last counter increment age out.
    let t = c.sim.now_ns() + 300_000_000;
    c.sim.run_until(t);
    // First payment increments the counter; an immediate second payment
    // at the same instant is throttled. The throttle never surfaces as
    // an error any more: the host parks the op and the admission pump
    // re-dispatches it once the counter window opens, so both resolve
    // with the payment's typed success.
    let first = c.submit(
        0,
        Command::Pay {
            id: chan,
            amount: 1,
            count: 1,
        },
    );
    let second = c.submit(
        0,
        Command::Pay {
            id: chan,
            amount: 1,
            count: 1,
        },
    );
    c.settle_network();
    for op in [first, second] {
        c.wait::<teechain::ops::Payment>(c.pending(op))
            .expect("throttled payment is pumped to completion");
    }
    assert_eq!(c.balances(0, chan).0, 1000 - 2);
}

#[test]
fn persist_mode_emits_sealed_blobs_and_restores() {
    let mut c = Cluster::new(ClusterConfig {
        n: 2,
        durability: teechain::DurabilityBackend::eager_persist(),
        ..ClusterConfig::default()
    });
    let chan = c.standard_channel(0, 1, "c1", 1000, 1);
    c.pay(0, chan, 50).unwrap();
    c.settle_network();
    let blob = c.node(0).sealed_store.clone().expect("sealed blob stored");
    // Crash and restore.
    c.node_mut(0).enclave.crash();
    let cfg = teechain::EnclaveConfig {
        trust_root: c.root.public_key(),
        measurement: teechain::TeechainNode::measurement(),
        durability: teechain::DurabilityBackend::eager_persist(),
    };
    c.node_mut(0)
        .enclave
        .restart(teechain::TeechainEnclave::new(cfg));
    c.exec(0, Command::RestoreSealed { blob });
    // The restored enclave can settle the channel unilaterally.
    let my_settle = {
        let p = c.node(0).enclave.program().unwrap();
        p.channel(&chan).unwrap().my_settlement
    };
    c.settle_channel(0, chan).unwrap();
    c.mine(1);
    assert_eq!(c.chain_balance(&my_settle), 950);
}

#[test]
fn stale_sealed_blob_rejected() {
    // Roll-back attack: restore an *old* sealed blob after newer state
    // was sealed. The hardware counter exposes the staleness.
    let mut c = Cluster::new(ClusterConfig {
        n: 2,
        durability: teechain::DurabilityBackend::eager_persist(),
        ..ClusterConfig::default()
    });
    let chan = c.standard_channel(0, 1, "c1", 1000, 1);
    c.pay(0, chan, 50).unwrap();
    c.settle_network();
    let old_blob = c.node(0).sealed_store.clone().unwrap();
    // Advance simulated time past the counter throttle, then pay again.
    let nid = c.nid(0);
    c.sim.call(nid, |_, ctx| ctx.set_timer(200_000_000, 1));
    c.settle_network();
    c.pay(0, chan, 50).unwrap();
    c.settle_network();
    // Crash; attacker restores the older blob.
    c.node_mut(0).enclave.crash();
    let cfg = teechain::EnclaveConfig {
        trust_root: c.root.public_key(),
        measurement: teechain::TeechainNode::measurement(),
        durability: teechain::DurabilityBackend::eager_persist(),
    };
    c.node_mut(0)
        .enclave
        .restart(teechain::TeechainEnclave::new(cfg));
    let result = c.op(0, Command::RestoreSealed { blob: old_blob });
    assert!(result.is_err(), "stale blob must be rejected");
}
