//! Typed error paths of the correlated-operation API: every failure mode
//! — local rejection, remote refusal, crashed peer, explicit deadline —
//! yields exactly one `Completion` with the expected `OpError`, under
//! BOTH discrete-event engines (sequential and sharded).

use teechain::enclave::Command;
use teechain::ops::{OpError, Payment};
use teechain::testkit::{Cluster, ClusterConfig};
use teechain::{ChannelId, ProtocolError};
use teechain_net::EngineKind;

/// Runs `f` against a functional cluster under the sequential engine and
/// under the sharded engine (2 shards), so completion semantics cannot
/// drift between the two.
fn under_both_engines(n: usize, f: impl Fn(&mut Cluster, EngineKind)) {
    for kind in [EngineKind::Seq, EngineKind::Sharded { shards: 2 }] {
        let mut c = Cluster::new(ClusterConfig {
            n,
            engine: kind,
            ..ClusterConfig::default()
        });
        f(&mut c, kind);
    }
}

#[test]
fn payment_on_unknown_channel_rejects() {
    under_both_engines(2, |c, kind| {
        c.connect(0, 1);
        let bogus = ChannelId::from_label("never-opened");
        let err = c.pay(0, bogus, 5).unwrap_err();
        assert_eq!(
            err,
            OpError::Rejected(ProtocolError::UnknownChannel),
            "engine {kind}"
        );
    });
}

#[test]
fn payment_exceeding_balance_rejects() {
    under_both_engines(2, |c, kind| {
        let chan = c.standard_channel(0, 1, "small", 100, 1);
        let err = c.pay(0, chan, 101).unwrap_err();
        assert_eq!(
            err,
            OpError::Rejected(ProtocolError::InsufficientBalance),
            "engine {kind}"
        );
        // The rejection moved nothing.
        assert_eq!(c.balances(0, chan), (100, 0), "engine {kind}");
    });
}

#[test]
fn multihop_through_crashed_intermediary_times_out() {
    under_both_engines(3, |c, kind| {
        let c01 = c.standard_channel(0, 1, "c01", 1000, 1);
        let c12 = c.standard_channel(1, 2, "c12", 1000, 1);
        // The intermediary dies; the lock message is dropped on the
        // floor, so no abort ever comes back. At quiescence the
        // operation is declared dead with a typed timeout instead of
        // silently never resolving.
        c.crash_node(1);
        let err = c
            .pay_multihop(&[0, 1, 2], &[c01, c12], 50, "dead-hop")
            .unwrap_err();
        assert!(
            matches!(err, OpError::Timeout { .. }),
            "engine {kind}: {err:?}"
        );
        // The sender's channel state is untouched by the dead route
        // apart from the lock, which eject can clear; balances moved
        // nowhere.
        assert_eq!(c.balances(0, c01), (1000, 0), "engine {kind}");
    });
}

#[test]
fn remote_refusal_carries_the_real_reason() {
    under_both_engines(3, |c, kind| {
        let c01 = c.standard_channel(0, 1, "c01", 1000, 1);
        let c12 = c.standard_channel(1, 2, "c12", 1000, 1);
        // Drain the intermediary's forwarding balance: its refusal
        // reason travels back along the abort unwind.
        c.pay(1, c12, 1000).unwrap();
        let err = c
            .pay_multihop(&[0, 1, 2], &[c01, c12], 500, "broke-hop")
            .unwrap_err();
        assert_eq!(
            err,
            OpError::Remote(ProtocolError::InsufficientBalance),
            "engine {kind}"
        );
    });
}

#[test]
fn deadline_resolves_exactly_at_the_deadline() {
    under_both_engines(2, |c, kind| {
        let chan = c.standard_channel(0, 1, "c1", 500, 1);
        // The peer crashes; a deadline-carrying payment must resolve by
        // in-simulation timer at exactly the requested instant.
        c.crash_node(1);
        let deadline = c.sim.now_ns() + 2_000_000_000;
        let op = c.submit_with_deadline(
            0,
            Command::Pay {
                id: chan,
                amount: 10,
                count: 1,
            },
            deadline,
        );
        let err = c.wait::<Payment>(c.pending(op)).unwrap_err();
        assert_eq!(err, OpError::Timeout { at_ns: deadline }, "engine {kind}");
        // The completion is on the stream, stamped with the deadline.
        let completion = c
            .completions(0)
            .iter()
            .find(|x| x.op == op)
            .expect("recorded")
            .clone();
        assert_eq!(completion.time_ns, deadline, "engine {kind}");
    });
}

#[test]
fn exactly_one_completion_per_operation() {
    under_both_engines(2, |c, kind| {
        let chan = c.standard_channel(0, 1, "c1", 1000, 1);
        let before = c.completions(0).len();
        let mut ops = Vec::new();
        for _ in 0..5 {
            ops.push(c.submit(
                0,
                Command::Pay {
                    id: chan,
                    amount: 10,
                    count: 1,
                },
            ));
        }
        c.settle_network();
        let new: Vec<_> = c.completions(0)[before..].to_vec();
        assert_eq!(new.len(), 5, "engine {kind}");
        for op in ops {
            assert_eq!(
                new.iter().filter(|x| x.op == op).count(),
                1,
                "engine {kind}: exactly one completion for {op}"
            );
        }
        assert!(new.iter().all(|x| x.outcome.is_ok()), "engine {kind}");
    });
}

#[test]
fn completion_history_is_engine_shard_invariant() {
    // The same scenario at 1, 2 and 4 shards yields an identical merged
    // completion history — ids, outcomes and times (the testkit-level
    // counterpart of the bench determinism suite).
    let run = |shards: usize| {
        let mut c = Cluster::new(ClusterConfig {
            n: 3,
            engine: EngineKind::Sharded { shards },
            ..ClusterConfig::default()
        });
        let c01 = c.standard_channel(0, 1, "c01", 1000, 1);
        let c12 = c.standard_channel(1, 2, "c12", 1000, 1);
        c.pay(0, c01, 100).unwrap();
        c.pay_multihop(&[0, 1, 2], &[c01, c12], 50, "r").unwrap();
        let _ = c.pay(0, c01, 10_000).unwrap_err(); // Typed failure, also in-stream.
        c.settle_network();
        c.completion_log()
    };
    let base = run(1);
    assert!(!base.is_empty());
    for shards in [2, 4] {
        assert_eq!(run(shards), base, "sharded:{shards} diverged");
    }
}
