//! The admission layer end-to-end: per-channel op queues, batched
//! drains, lock-aware rerouting over parallel temporary channels, and
//! the crash semantics that make batch commits exactly-once.
//!
//! Companion to the unit tests in `admit.rs` and the queue/drain tests
//! in `protocol.rs` — here every property is exercised through the
//! simulator with real locks (in-flight multihops) holding the channel.

use teechain::enclave::Command;
use teechain::ops::OpError;
use teechain::testkit::{Cluster, ClusterConfig};
use teechain::{ChannelId, DurabilityBackend, PersistPolicy, ProtocolError, RouteId};

fn persist_cluster(n: usize, snapshot_every: u32) -> Cluster {
    Cluster::new(ClusterConfig {
        n,
        durability: DurabilityBackend::Persist(PersistPolicy { snapshot_every }),
        ..ClusterConfig::default()
    })
}

/// Locks `c01` by submitting a multihop 0→1→2 and NOT running the
/// network: the origin locks its outgoing channel synchronously at
/// submission.
fn lock_first_hop(c: &mut Cluster, c01: ChannelId, c12: ChannelId, tag: u8) -> teechain::ops::OpId {
    let hops = vec![c.ids[0], c.ids[1], c.ids[2]];
    c.submit(
        0,
        Command::PayMultihop {
            route: RouteId([tag; 32]),
            hops,
            channels: vec![c01, c12],
            amount: 10,
        },
    )
}

#[test]
fn queued_pays_complete_in_submission_order_with_their_own_amounts() {
    let mut c = Cluster::functional(3);
    let c01 = c.standard_channel(0, 1, "c01", 1000, 1);
    let c12 = c.standard_channel(1, 2, "c12", 1000, 1);
    let mh = lock_first_hop(&mut c, c01, c12, 1);
    // Three distinct pays park behind the lock (one channel, no sibling
    // to reroute over).
    let amounts = [5u64, 7, 11];
    let pends: Vec<_> = amounts
        .iter()
        .map(|&amount| {
            c.submit(
                0,
                Command::Pay {
                    id: c01,
                    amount,
                    count: 1,
                },
            )
        })
        .collect();
    let stats = c.node(0).enclave.program().unwrap().admit_stats();
    assert!(stats.enqueued >= 3, "all three parked: {}", stats.enqueued);
    c.wait::<teechain::ops::Delivered>(c.pending(mh)).unwrap();
    // FIFO fan-out: each op completes with exactly the amount it
    // submitted, in submission order (the ack fan-out group preserves
    // the queue order).
    for (pend, &amount) in pends.into_iter().zip(amounts.iter()) {
        let p = c.wait::<teechain::ops::Payment>(c.pending(pend)).unwrap();
        assert_eq!(p.amount, amount, "op got its own amount back");
    }
    // Balance conservation: 10 (multihop) + 5 + 7 + 11 left node 0.
    assert_eq!(c.balances(0, c01), (1000 - 10 - 23, 10 + 23));
    let stats = c.node(0).enclave.program().unwrap().admit_stats();
    assert!(stats.batches >= 1, "drain batched the queue");
    assert_eq!(stats.batched_payments, 3, "all three applied via batches");
    assert!(
        stats.max_batch >= 2,
        "neighbours merged: {}",
        stats.max_batch
    );
}

#[test]
fn batch_drain_joins_the_unlock_commit() {
    // The queued pays must not cost their own WAL commits: the drain
    // runs inside the ecall that releases the lock, so the whole batch
    // joins that ecall's group commit. Baseline: the identical multihop
    // with nothing queued.
    let commits_for = |queued: &[u64]| -> u64 {
        let mut c = persist_cluster(3, 1_000);
        let c01 = c.standard_channel(0, 1, "c01", 1000, 1);
        let c12 = c.standard_channel(1, 2, "c12", 1000, 1);
        // Let every counter throttle window expire before measuring.
        let t = c.sim.now_ns() + 300_000_000;
        c.sim.run_until(t);
        let base = c.store(0).unwrap().lock().stats().commits;
        let mh = lock_first_hop(&mut c, c01, c12, 2);
        let pends: Vec<_> = queued
            .iter()
            .map(|&amount| {
                c.submit(
                    0,
                    Command::Pay {
                        id: c01,
                        amount,
                        count: 1,
                    },
                )
            })
            .collect();
        c.wait::<teechain::ops::Delivered>(c.pending(mh)).unwrap();
        for p in pends {
            c.wait::<teechain::ops::Payment>(c.pending(p)).unwrap();
        }
        c.store(0).unwrap().lock().stats().commits - base
    };
    let alone = commits_for(&[]);
    let with_batch = commits_for(&[5, 7, 11]);
    assert!(
        with_batch <= alone + 1,
        "3 queued pays cost at most one extra commit \
         (batch may ride the unlock ecall): {alone} -> {with_batch}"
    );
}

#[test]
fn crash_with_queued_ops_is_exactly_once() {
    // Queued-but-undrained ops are volatile by design: they are in no
    // sealed batch record, so a crash drops them — the host resolves
    // them as dead, recovery replays only committed state, and nothing
    // is half-applied.
    let mut c = persist_cluster(3, 1_000);
    let c01 = c.standard_channel(0, 1, "c01", 1000, 1);
    let c12 = c.standard_channel(1, 2, "c12", 1000, 1);
    let before = c.balances(0, c01);
    let mh = lock_first_hop(&mut c, c01, c12, 3);
    let pay = c.submit(
        0,
        Command::Pay {
            id: c01,
            amount: 5,
            count: 1,
        },
    );
    // (In persist mode the pay may park in the counter-throttle stash
    // rather than the admission queue — both are volatile, which is the
    // property under test.)
    c.crash_node(0);
    c.settle_network();
    // Both in-flight ops are typed-dead, not silently gone.
    for pend in [mh, pay] {
        let err = c
            .wait::<teechain::ops::OpOutput>(c.pending(pend))
            .unwrap_err();
        assert!(matches!(err, OpError::Timeout { .. }), "{err:?}");
    }
    c.recover_node(0).unwrap();
    // Exactly-once: neither the multihop debit nor the queued pay
    // survived — they never reached a sealed record. Both ends agree.
    assert_eq!(c.balances(0, c01), before, "no partial application");
    assert_eq!(c.balances(1, c01), (before.1, before.0), "peer agrees");
    // (Node 1 still holds the dead route's lock — releasing that is the
    // eject path's job, exercised in the eject suite.)
}

#[test]
fn torn_batch_record_is_detected_as_rollback() {
    // Commit a drained batch, then tear the WAL tail: the monotonic
    // counter already covers the batch record, so recovery must refuse
    // the truncated log as state roll-back — a batch is all-or-nothing.
    let mut c = persist_cluster(3, 1_000);
    let c01 = c.standard_channel(0, 1, "c01", 1000, 1);
    let c12 = c.standard_channel(1, 2, "c12", 1000, 1);
    let mh = lock_first_hop(&mut c, c01, c12, 4);
    let pay = c.submit(
        0,
        Command::Pay {
            id: c01,
            amount: 5,
            count: 1,
        },
    );
    c.wait::<teechain::ops::Delivered>(c.pending(mh)).unwrap();
    c.wait::<teechain::ops::Payment>(c.pending(pay)).unwrap();
    c.crash_node(0);
    c.store(0).unwrap().lock().tear_tail(4).unwrap();
    let err = c.recover_node(0).unwrap_err();
    assert!(
        matches!(err, OpError::Rejected(ProtocolError::StaleState { .. })),
        "torn batch tail must be refused: {err:?}"
    );
}

#[test]
fn queued_pay_expires_with_channel_locked_when_the_route_stalls() {
    // A crashed terminal hop never answers the lock pass, so the origin's
    // channel stays locked. The parked pay must not wait forever: at its
    // admission deadline it fails with the typed `ChannelLocked`.
    let mut c = Cluster::functional(3);
    let c01 = c.standard_channel(0, 1, "c01", 1000, 1);
    let c12 = c.standard_channel(1, 2, "c12", 1000, 1);
    c.crash_node(2);
    let _mh = lock_first_hop(&mut c, c01, c12, 5);
    let pay = c.submit(
        0,
        Command::Pay {
            id: c01,
            amount: 5,
            count: 1,
        },
    );
    // Run past the 30s admission deadline; the host pump timer fires the
    // expiry sweep.
    let t = c.sim.now_ns() + teechain::admit::ADMIT_DEADLINE_NS + 1_000_000_000;
    c.sim.run_until(t);
    let err = c
        .wait::<teechain::ops::Payment>(c.pending(pay))
        .unwrap_err();
    assert_eq!(err, OpError::Rejected(ProtocolError::ChannelLocked));
    let stats = c.node(0).enclave.program().unwrap().admit_stats();
    assert!(stats.expired >= 1, "deadline sweep counted the entry");
    // Nothing was debited for the expired op.
    assert_eq!(c.balances(0, c01).0 + c.balances(0, c01).1, 1000);
}

#[test]
fn locked_channel_pay_reroutes_over_parallel_channel() {
    // Lock-aware selection: with a parallel (temporary) channel to the
    // same peer open and funded, a pay against the locked channel is
    // carried immediately instead of queueing — and still completes
    // under the op id and channel the caller submitted.
    let mut c = Cluster::functional(3);
    let c01a = c.standard_channel(0, 1, "par-a", 1000, 1);
    let c01b = c.standard_channel(0, 1, "par-b", 1000, 1);
    let c12 = c.standard_channel(1, 2, "c12", 1000, 1);
    let mh = lock_first_hop(&mut c, c01a, c12, 6);
    let pay = c.submit(
        0,
        Command::Pay {
            id: c01a,
            amount: 5,
            count: 1,
        },
    );
    let stats = c.node(0).enclave.program().unwrap().admit_stats();
    assert_eq!(stats.rerouted, 1, "pay took the unlocked sibling");
    assert_eq!(stats.enqueued, 0, "nothing needed to queue");
    c.wait::<teechain::ops::Delivered>(c.pending(mh)).unwrap();
    let p = c.wait::<teechain::ops::Payment>(c.pending(pay)).unwrap();
    assert_eq!(p.amount, 5);
    // The value moved over the sibling; the locked channel carried only
    // the multihop.
    assert_eq!(c.balances(0, c01b), (995, 5));
    assert_eq!(c.balances(0, c01a), (990, 10));
}

#[test]
fn multihop_origination_reroutes_first_hop_over_parallel_channel() {
    // Two routes name the same (locked) first-hop channel; the second
    // origination swaps in the unlocked sibling instead of queueing, so
    // both proceed concurrently from the origin.
    let mut c = Cluster::functional(3);
    let c01a = c.standard_channel(0, 1, "par-a", 1000, 1);
    let c01b = c.standard_channel(0, 1, "par-b", 1000, 1);
    let c12 = c.standard_channel(1, 2, "c12", 1000, 1);
    let mh1 = lock_first_hop(&mut c, c01a, c12, 7);
    let mh2 = c.submit(
        0,
        Command::PayMultihop {
            route: RouteId([8; 32]),
            hops: vec![c.ids[0], c.ids[1], c.ids[2]],
            channels: vec![c01a, c12],
            amount: 20,
        },
    );
    let stats = c.node(0).enclave.program().unwrap().admit_stats();
    assert!(stats.rerouted >= 1, "second route took the sibling");
    c.wait::<teechain::ops::Delivered>(c.pending(mh1)).unwrap();
    c.wait::<teechain::ops::Delivered>(c.pending(mh2)).unwrap();
    // Both delivered in full to the terminal hop.
    assert_eq!(c.balances(2, c12).0, 30);
    // The reroute spread the debits across the siblings.
    assert_eq!(c.balances(0, c01a).0 + c.balances(0, c01b).0, 2000 - 30);
}
