//! Premature termination of multi-hop payments: eject, τ and PoPTs (§5).

use teechain::enclave::Command;
use teechain::ops::OpError;
use teechain::testkit::Cluster;
use teechain::{ChannelId, ProtocolError, RouteId};

/// Builds a 3-node path and drives the multi-hop protocol only up to a
/// given number of simulator events, so tests can freeze it mid-protocol.
fn setup() -> (Cluster, ChannelId, ChannelId, RouteId) {
    let mut c = Cluster::functional(3);
    let c01 = c.standard_channel(0, 1, "c01", 1000, 1);
    let c12 = c.standard_channel(1, 2, "c12", 1000, 1);
    let route = RouteId([42; 32]);
    (c, c01, c12, route)
}

fn start_multihop(c: &mut Cluster, route: RouteId, c01: ChannelId, c12: ChannelId, amount: u64) {
    let hops = vec![c.ids[0], c.ids[1], c.ids[2]];
    // Submit without resolving: the tests freeze the protocol
    // mid-flight, so the multihop operation deliberately stays pending.
    c.submit(
        0,
        Command::PayMultihop {
            route,
            hops,
            channels: vec![c01, c12],
            amount,
        },
    );
}

#[test]
fn eject_at_lock_settles_pre_payment() {
    let (mut c, c01, c12, route) = setup();
    start_multihop(&mut c, route, c01, c12, 300);
    // p1 ejects immediately (stage = lock): settlement at pre-payment
    // balances (1000 / 0).
    let my_settle = {
        let p = c.node(0).enclave.program().unwrap();
        p.channel(&c01).unwrap().my_settlement
    };
    c.op_now(0, Command::Eject { route }).unwrap();
    c.mine(1);
    assert_eq!(c.chain_balance(&my_settle), 1000, "pre-payment settlement");
}

#[test]
fn eject_mid_protocol_settles_via_tau() {
    let (mut c, c01, c12, route) = setup();
    start_multihop(&mut c, route, c01, c12, 300);
    // Drive the protocol until p1 reaches preUpdate (lock forward = 2
    // messages, sign backward = 2 messages).
    c.sim.run_to_idle(4);
    let stage0 = {
        let p = c.node(0).enclave.program().unwrap();
        p.channel(&c01).unwrap().stage
    };
    assert_eq!(stage0, teechain::MultihopStage::PreUpdate);
    // p1 ejects: the only permitted settlement is τ, which settles the
    // WHOLE path at post-payment state.
    let settle0 = {
        let p = c.node(0).enclave.program().unwrap();
        p.channel(&c01).unwrap().my_settlement
    };
    let settle2 = {
        let p = c.node(2).enclave.program().unwrap();
        p.channel(&c12).unwrap().my_settlement
    };
    c.op_now(0, Command::Eject { route }).unwrap();
    c.mine(1);
    // τ carries post-payment balances: p1 ends with 700, p3 with 300.
    assert_eq!(c.chain_balance(&settle0), 700);
    assert_eq!(c.chain_balance(&settle2), 300);
}

#[test]
fn popt_forces_consistent_pre_payment_settlement() {
    let (mut c, c01, c12, route) = setup();
    start_multihop(&mut c, route, c01, c12, 300);
    // Run lock+sign so everyone holds τ and the digest map; p1 enters
    // preUpdate, p2 is at sign.
    c.sim.run_to_idle(4);
    // p3 (node 2) prematurely terminates at stage *sign*: its settlement
    // is at pre-payment state.
    c.op_now(2, Command::Eject { route }).unwrap();
    c.mine(1);
    let popt = {
        // Node 0's host finds the conflicting settlement on chain by
        // watching the deposits of its route (here: via the spender index).
        let p = c.node(2).enclave.program().unwrap();
        let dep = p.channel(&c12).unwrap().all_deposits()[0];
        c.chain.lock().find_spender(&dep).unwrap().clone()
    };
    // Node 0 presents the PoPT; its TEE authorizes a *pre-payment*
    // settlement of its own channel, consistent with p3's state.
    let my_settle = {
        let p = c.node(0).enclave.program().unwrap();
        p.channel(&c01).unwrap().my_settlement
    };
    c.op_now(0, Command::EjectWithPopt { route, popt }).unwrap();
    c.mine(1);
    assert_eq!(c.chain_balance(&my_settle), 1000, "pre-payment, not 700");
}

#[test]
fn popt_forces_consistent_post_payment_settlement() {
    let (mut c, c01, c12, route) = setup();
    start_multihop(&mut c, route, c01, c12, 300);
    // Run until p2 processed postUpdate (event 9: lock×2, sign×2,
    // preUpdate×2, update×2, postUpdate@p2) — p2 is at postUpdate while
    // pn (node 2) is still at update, holding τ. This is exactly the
    // overlap window of the paper's case analysis (stage update, case ii).
    c.sim.run_to_idle(9);
    assert_eq!(
        c.node(1)
            .enclave
            .program()
            .unwrap()
            .channel(&c12)
            .unwrap()
            .stage,
        teechain::MultihopStage::PostUpdate
    );
    assert_eq!(
        c.node(2)
            .enclave
            .program()
            .unwrap()
            .channel(&c12)
            .unwrap()
            .stage,
        teechain::MultihopStage::Update
    );
    // p2 prematurely terminates at postUpdate: individual *post-payment*
    // settlements of both its channels.
    c.op_now(1, Command::Eject { route }).unwrap();
    c.mine(1);
    // pn (node 2), still at update, discovers the conflicting settlement
    // of its channel and presents it as PoPT: its TEE authorizes the
    // matching post-payment settlement (identical canonical transaction,
    // so broadcasting is a harmless duplicate).
    let popt = {
        let p = c.node(2).enclave.program().unwrap();
        let dep = p.channel(&c12).unwrap().all_deposits()[0];
        c.chain.lock().find_spender(&dep).unwrap().clone()
    };
    c.op_now(2, Command::EjectWithPopt { route, popt }).unwrap();
    c.mine(1);
    // Everyone ended post-payment: p3's settlement address holds 300.
    let p3_settle = {
        let p = c.node(2).enclave.program().unwrap();
        p.channel(&c12).unwrap().my_settlement
    };
    assert_eq!(c.chain_balance(&p3_settle), 300, "post-payment settlement");
    // And value was conserved: no deposit settled twice.
    let chain = c.chain.lock();
    assert_eq!(
        chain.utxo_total() + chain.total_fees(),
        chain.total_minted()
    );
}

#[test]
fn conflicting_settlements_cannot_both_confirm() {
    let (mut c, c01, c12, route) = setup();
    start_multihop(&mut c, route, c01, c12, 300);
    c.sim.run_to_idle(4); // p1 at preUpdate with τ.
                          // p1 ejects via τ; p3 simultaneously ejects at its own state.
    c.op_now(0, Command::Eject { route }).unwrap();
    c.op_now(2, Command::Eject { route }).unwrap();
    c.mine(2);
    // Exactly one settlement family confirmed for each deposit: the chain
    // rejected whichever conflicting transaction came second.
    let chain = c.chain.lock();
    let (confirmed, _) = chain.confirmed_footprint();
    // τ spends everything in one transaction; the loser's settlements
    // conflicted and were dropped.
    assert!(confirmed >= 1, "at least one settlement landed");
    // Neither deposit is double-spent: UTXO conservation holds.
    assert_eq!(
        chain.utxo_total() + chain.total_fees(),
        chain.total_minted()
    );
}

#[test]
fn bad_popt_rejected() {
    let (mut c, c01, c12, route) = setup();
    start_multihop(&mut c, route, c01, c12, 300);
    c.sim.run_to_idle(4);
    // A random transaction that does NOT conflict with the route's τ.
    let alien_key = teechain_crypto::schnorr::Keypair::from_seed(&[99; 32]);
    let op = c.chain.lock().mint_p2pk(&alien_key.pk, 5);
    let mut alien = teechain_blockchain::Transaction {
        inputs: vec![teechain_blockchain::TxIn::spend(op)],
        outputs: vec![teechain_blockchain::TxOut {
            value: 5,
            script: teechain_blockchain::ScriptPubKey::P2pk(alien_key.pk),
        }],
    };
    alien.sign_input(0, &alien_key.sk);
    let err = c
        .op_now(0, Command::EjectWithPopt { route, popt: alien })
        .unwrap_err();
    assert_eq!(err, OpError::Rejected(ProtocolError::BadPopt));
}

#[test]
fn ejected_route_cannot_eject_twice() {
    let (mut c, c01, c12, route) = setup();
    start_multihop(&mut c, route, c01, c12, 300);
    c.op_now(0, Command::Eject { route }).unwrap();
    assert!(c.op_now(0, Command::Eject { route }).is_err());
}
