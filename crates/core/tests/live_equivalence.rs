//! Sim-vs-live equivalence: one seeded scenario, five substrates, one
//! outcome history.
//!
//! The correlated-operation layer gives every substrate the same
//! observable: a set of `(OpId, outcome)` pairs. This suite replays an
//! identical scenario — sessions, channels, deposits, payments (including
//! deterministic failures), a multi-hop transfer, a cross-chain atomic
//! swap and an on-chain settlement — on:
//!
//! * the sequential discrete-event engine,
//! * the sharded conservative-parallel engine (4 shards),
//! * the live runtime over in-process thread channels,
//! * the live runtime over localhost TCP sockets,
//! * the sharded live scheduler over the non-blocking reactor transport,
//!
//! and asserts the five outcome sets are identical. Identities, channel
//! ids, deposit outpoints and settlement transaction ids all match
//! bit-for-bit because the harnesses derive hardware seeds with the same
//! formulas; only completion *times* (and cross-node interleavings on the
//! live substrates) differ, so the fingerprint deliberately excludes
//! them.

use teechain::enclave::Command;
use teechain::live::{LiveCluster, LiveConfig};
use teechain::ops::{OpError, OpId, OpOutput, Pending};
use teechain::testkit::{Cluster, ClusterConfig};
use teechain::types::ChannelId;
use teechain::Completion;
use teechain_crypto::schnorr::PublicKey;
use teechain_net::{EngineKind, NodeId};

const SEED: u64 = 0x11FE;
const N: usize = 4;
const LIVE_WAIT: std::time::Duration = std::time::Duration::from_secs(60);

/// The per-substrate surface the scenario drives: submit-only operations
/// plus blocking resolution, exactly the ops-layer contract.
trait Substrate {
    fn ids(&self) -> Vec<PublicKey>;
    fn submit(&mut self, i: usize, cmd: Command) -> OpId;
    fn submit_open_channel(&mut self, i: usize, id: ChannelId, remote: PublicKey) -> OpId;
    fn submit_fund_deposit(&mut self, i: usize, value: u64, m: u8) -> OpId;
    fn wait_output(&mut self, op: OpId) -> Result<OpOutput, OpError>;
    fn history(&mut self) -> Vec<Completion>;
}

struct Sim(Cluster);

impl Substrate for Sim {
    fn ids(&self) -> Vec<PublicKey> {
        self.0.ids.clone()
    }
    fn submit(&mut self, i: usize, cmd: Command) -> OpId {
        self.0.submit(i, cmd)
    }
    fn submit_open_channel(&mut self, i: usize, id: ChannelId, remote: PublicKey) -> OpId {
        self.0.sim.call(NodeId(i as u32), |host, ctx| {
            host.node.submit_open_channel(ctx, id, remote)
        })
    }
    fn submit_fund_deposit(&mut self, i: usize, value: u64, m: u8) -> OpId {
        self.0.sim.call(NodeId(i as u32), |host, ctx| {
            host.node.submit_fund_deposit(ctx, value, m)
        })
    }
    fn wait_output(&mut self, op: OpId) -> Result<OpOutput, OpError> {
        self.0.wait(Pending::<OpOutput>::new(op))
    }
    fn history(&mut self) -> Vec<Completion> {
        self.0.completion_log()
    }
}

struct Live(LiveCluster);

impl Substrate for Live {
    fn ids(&self) -> Vec<PublicKey> {
        self.0.ids.clone()
    }
    fn submit(&mut self, i: usize, cmd: Command) -> OpId {
        self.0.submit(i, cmd)
    }
    fn submit_open_channel(&mut self, i: usize, id: ChannelId, remote: PublicKey) -> OpId {
        self.0.submit_open_channel(i, id, remote)
    }
    fn submit_fund_deposit(&mut self, i: usize, value: u64, m: u8) -> OpId {
        self.0.submit_fund_deposit(i, value, m)
    }
    fn wait_output(&mut self, op: OpId) -> Result<OpOutput, OpError> {
        self.0.wait(Pending::<OpOutput>::new(op), LIVE_WAIT)
    }
    fn history(&mut self) -> Vec<Completion> {
        self.0.completion_log()
    }
}

/// One submitted-and-resolved step; panics only on harness plumbing
/// errors (typed failures are part of the scenario and flow into the
/// history).
fn step(s: &mut impl Substrate, i: usize, cmd: Command) -> Result<OpOutput, OpError> {
    let op = s.submit(i, cmd);
    s.wait_output(op)
}

/// The seeded scenario. Every operation resolves before the next is
/// submitted, so the outcome set is substrate-independent even though
/// live threads race: there is never more than one operation in flight.
fn run_scenario(s: &mut impl Substrate) -> Vec<(u32, u64, String)> {
    let ids = s.ids();
    let c01 = ChannelId::from_label("eq-c01");
    let c12 = ChannelId::from_label("eq-c12");
    let c23 = ChannelId::from_label("eq-c23");

    // Sessions along the line 0-1-2-3.
    for (a, b) in [(0, 1), (1, 2), (2, 3)] {
        step(s, a, Command::StartSession { remote: ids[b] }).expect("session");
    }
    // Channels.
    for (a, b, chan) in [(0usize, 1usize, c01), (1, 2, c12), (2, 3, c23)] {
        let op = s.submit_open_channel(a, chan, ids[b]);
        s.wait_output(op).expect("channel open");
    }
    // Deposits: fund, approve, associate.
    for (i, peer, chan, value) in [
        (0usize, 1usize, c01, 1_000u64),
        (1, 2, c12, 1_000),
        (2, 3, c23, 600),
    ] {
        let op = s.submit_fund_deposit(i, value, 1);
        let out = s.wait_output(op).expect("fund deposit");
        let OpOutput::DepositFunded(dep) = out else {
            panic!("unexpected fund output {out:?}");
        };
        step(
            s,
            i,
            Command::ApproveDeposit {
                remote: ids[peer],
                outpoint: dep.outpoint,
            },
        )
        .expect("approve");
        step(
            s,
            i,
            Command::AssociateDeposit {
                id: chan,
                outpoint: dep.outpoint,
            },
        )
        .expect("associate");
    }
    // Payments, including two deterministic typed failures.
    let pay = |chan: ChannelId, amount: u64| Command::Pay {
        id: chan,
        amount,
        count: 1,
    };
    step(s, 0, pay(c01, 100)).expect("pay 0->1");
    step(s, 1, pay(c12, 150)).expect("pay 1->2");
    step(s, 2, pay(c23, 200)).expect("pay 2->3");
    step(s, 0, pay(c01, 50)).expect("second pay 0->1");
    step(s, 0, pay(c01, 5_000)).expect_err("overspend is refused");
    step(s, 0, pay(ChannelId::from_label("eq-nope"), 1)).expect_err("unknown channel");
    // A multi-hop transfer 0 -> 1 -> 2.
    let route = teechain::types::RouteId(teechain_crypto::sha256::tagged_hash(
        "teechain/route",
        &[b"eq-route"],
    ));
    step(
        s,
        0,
        Command::PayMultihop {
            route,
            hops: vec![ids[0], ids[1], ids[2]],
            channels: vec![c01, c12],
            amount: 75,
        },
    )
    .expect("multihop 0->1->2");
    // A second multihop racing two direct pays against its (locked)
    // first hop: on the deterministic engines the pays park in the
    // enclave's admission queue and drain as a batch on unlock; on the
    // live substrates the wall-clock race may resolve either way. The
    // typed outcomes must be identical regardless — a queued op
    // completes exactly like an unqueued one.
    let route2 = teechain::types::RouteId(teechain_crypto::sha256::tagged_hash(
        "teechain/route",
        &[b"eq-route-2"],
    ));
    let mh2 = s.submit(
        0,
        Command::PayMultihop {
            route: route2,
            hops: vec![ids[0], ids[1], ids[2]],
            channels: vec![c01, c12],
            amount: 40,
        },
    );
    let racing: Vec<OpId> = [25u64, 30]
        .iter()
        .map(|&amount| s.submit(0, pay(c01, amount)))
        .collect();
    s.wait_output(mh2).expect("second multihop");
    for op in racing {
        s.wait_output(op)
            .expect("racing pay completes via the queue");
    }
    // A cross-chain atomic swap on the 0-1 channel: channel balance
    // against an HTLC on the alternate chain. The happy path is purely
    // message-driven (no timer races), so every substrate redeems and
    // the typed `SwapOutcome` — including the label-derived SwapId —
    // fingerprints identically.
    step(
        s,
        0,
        Command::Swap {
            swap: teechain::types::SwapId::from_label("eq-swap"),
            channel: c01,
            amount: 60,
            alt_amount: 120,
            timeout_blocks: 4,
        },
    )
    .expect("atomic swap 0<->1");
    // Settle the 2-3 channel: balances are non-neutral, so this
    // broadcasts a settlement transaction whose txid must also agree.
    step(s, 2, Command::Settle { id: c23 }).expect("settle 2-3");

    fingerprint(&s.history())
}

/// The substrate-independent view of a history: `(node, seq)` plus the
/// outcome with times stripped (completion timestamps are wall-clock on
/// the live substrates).
fn fingerprint(history: &[Completion]) -> Vec<(u32, u64, String)> {
    let mut out: Vec<(u32, u64, String)> = history
        .iter()
        .map(|c| {
            let outcome = match &c.outcome {
                Ok(o) => format!("ok:{o:?}"),
                Err(e) => format!("err:{}", e.label()),
            };
            (c.op.node, c.op.seq, outcome)
        })
        .collect();
    out.sort();
    out
}

fn sim_fingerprint(engine: EngineKind) -> Vec<(u32, u64, String)> {
    let mut sim = Sim(Cluster::new(ClusterConfig {
        n: N,
        seed: SEED,
        engine,
        ..ClusterConfig::default()
    }));
    run_scenario(&mut sim)
}

#[test]
fn seq_sharded_and_live_threads_agree() {
    let seq = sim_fingerprint(EngineKind::Seq);
    assert!(
        seq.iter().any(|(_, _, o)| o.contains("MultihopDelivered")),
        "scenario exercises multihop: {seq:?}"
    );
    assert!(
        seq.iter().any(|(_, _, o)| o.contains("err:rejected")),
        "scenario exercises typed failures: {seq:?}"
    );
    assert!(
        seq.iter()
            .any(|(_, _, o)| o.contains("Swap") && o.contains("redeemed: true")),
        "scenario exercises a redeemed atomic swap: {seq:?}"
    );
    let sharded = sim_fingerprint(EngineKind::Sharded { shards: 4 });
    assert_eq!(seq, sharded, "seq vs sharded outcome sets differ");

    let mut live = Live(LiveCluster::over_threads(LiveConfig {
        n: N,
        seed: SEED,
        ..LiveConfig::default()
    }));
    let threads = run_scenario(&mut live);
    live.0.shutdown();
    assert_eq!(seq, threads, "seq vs live-threads outcome sets differ");
}

#[test]
fn live_tcp_agrees_with_seq() {
    let seq = sim_fingerprint(EngineKind::Seq);
    let mut live = Live(
        LiveCluster::over_tcp(LiveConfig {
            n: N,
            seed: SEED,
            ..LiveConfig::default()
        })
        .expect("bind localhost listeners"),
    );
    let tcp = run_scenario(&mut live);
    live.0.shutdown();
    assert_eq!(seq, tcp, "seq vs live-tcp outcome sets differ");
}

#[test]
fn live_reactor_agrees_with_seq() {
    let seq = sim_fingerprint(EngineKind::Seq);
    let mut live = Live(
        LiveCluster::over_reactor(LiveConfig {
            n: N,
            seed: SEED,
            ..LiveConfig::default()
        })
        .expect("bind reactor listener"),
    );
    let reactor = run_scenario(&mut live);
    live.0.shutdown();
    assert_eq!(seq, reactor, "seq vs live-reactor outcome sets differ");
}

#[test]
fn live_concurrent_payments_conserve_balance() {
    // Beyond the lock-step scenario: many payments in flight at once on
    // the live substrate must still conserve channel balance exactly.
    let net = LiveCluster::over_threads(LiveConfig {
        n: 2,
        seed: 9,
        ..LiveConfig::default()
    });
    let chan = net.standard_channel(0, 1, "eq-burst", 100_000, 1);
    let pendings: Vec<_> = (0..50).map(|_| net.submit_pay(0, chan, 7)).collect();
    let mut delivered = 0u64;
    for p in pendings {
        delivered += net.wait(p, LIVE_WAIT).expect("burst payment").amount;
    }
    assert_eq!(delivered, 350);
    let nodes = net.shutdown();
    let c = nodes[0]
        .enclave
        .program()
        .and_then(|p| p.channel(&chan))
        .expect("channel");
    assert_eq!((c.my_bal, c.remote_bal), (100_000 - 350, 350));
}

#[test]
fn reactor_concurrent_payments_conserve_balance() {
    // The same burst on the sharded scheduler: fifty payments in flight
    // at once cross the run queue, the shared timer heap and the reactor
    // pool, and channel balance must still be conserved exactly.
    let net = LiveCluster::over_reactor(LiveConfig {
        n: 2,
        seed: 9,
        ..LiveConfig::default()
    })
    .expect("bind reactor listener");
    let chan = net.standard_channel(0, 1, "eq-burst-reactor", 100_000, 1);
    let pendings: Vec<_> = (0..50).map(|_| net.submit_pay(0, chan, 7)).collect();
    let mut delivered = 0u64;
    for p in pendings {
        delivered += net.wait(p, LIVE_WAIT).expect("burst payment").amount;
    }
    assert_eq!(delivered, 350);
    let nodes = net.shutdown();
    let c = nodes[0]
        .enclave
        .program()
        .and_then(|p| p.channel(&chan))
        .expect("channel");
    assert_eq!((c.my_bal, c.remote_bal), (100_000 - 350, 350));
}
