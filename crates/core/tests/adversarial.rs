//! Adversarial inputs: malformed wire bytes, cross-session replay, and
//! the §5.2 temporary-channel lifecycle.

use proptest::prelude::*;
use teechain::enclave::Command;
use teechain::ops::{OpError, SettleKind};
use teechain::testkit::Cluster;

#[test]
fn junk_wire_bytes_never_panic() {
    let mut c = Cluster::functional(2);
    c.connect(0, 1);
    // Deliver assorted garbage straight into the enclave.
    for len in [0usize, 1, 2, 16, 64, 300] {
        let junk: Vec<u8> = (0..len).map(|i| (i * 37 + 11) as u8).collect();
        let _ = c.op_now(0, Command::Deliver { wire: junk });
    }
    // The enclave still works.
    let chan = c.standard_channel(0, 1, "after-junk", 100, 1);
    c.pay(0, chan, 10).unwrap();
    assert_eq!(c.balances(0, chan), (90, 10));
}

#[test]
fn cross_session_replay_rejected() {
    // A message sealed for the A↔B session must not be accepted by C,
    // even though C runs the identical enclave build (state-forking
    // defence, §4.1).
    let mut c = Cluster::functional(3);
    c.connect(0, 1);
    c.connect(0, 2);
    let chan = c.standard_channel(0, 1, "ab", 100, 1);
    // Capture the wire bytes of a payment from A to B by replaying the
    // effect: easiest via a fresh payment whose Send effect we intercept.
    // Here we simply deliver B-bound traffic to C by asking A's enclave
    // for the message and handing it to C's enclave directly.
    let msg_for_b = {
        let node0 = c.node_mut(0);
        let outcome = node0
            .enclave
            .call(
                0,
                Command::Pay {
                    id: chan,
                    amount: 5,
                    count: 1,
                },
            )
            .unwrap()
            .unwrap();
        outcome
            .into_iter()
            .find_map(|e| match e {
                teechain::Effect::Send { wire, .. } => Some(wire),
                _ => None,
            })
            .expect("payment message")
    };
    // C cannot decrypt or accept it: a typed local rejection.
    let err = c
        .op_now(2, Command::Deliver { wire: msg_for_b })
        .unwrap_err();
    assert!(matches!(
        err.protocol_error(),
        Some(teechain::ProtocolError::NoSession | teechain::ProtocolError::BadMessage)
    ));
}

#[test]
fn duplicate_delivery_rejected_once_consumed() {
    let mut c = Cluster::functional(2);
    c.connect(0, 1);
    let chan = c.standard_channel(0, 1, "dup", 100, 1);
    let msg_for_b = {
        let node0 = c.node_mut(0);
        let outcome = node0
            .enclave
            .call(
                0,
                Command::Pay {
                    id: chan,
                    amount: 5,
                    count: 1,
                },
            )
            .unwrap()
            .unwrap();
        outcome
            .into_iter()
            .find_map(|e| match e {
                teechain::Effect::Send { wire, .. } => Some(wire),
                _ => None,
            })
            .expect("payment message")
    };
    // First delivery applies; replaying it is rejected (strict seq).
    c.op_now(
        1,
        Command::Deliver {
            wire: msg_for_b.clone(),
        },
    )
    .unwrap();
    let err = c
        .op_now(1, Command::Deliver { wire: msg_for_b })
        .unwrap_err();
    assert_eq!(err, OpError::Rejected(teechain::ProtocolError::BadMessage));
    // The balance moved exactly once.
    assert_eq!(c.balances(1, chan).0, 5);
}

#[test]
fn temporary_channel_merge_cycle() {
    // §5.2: a temporary channel is drained back to neutral by paying a
    // cycle to yourself over the primary channel, then closed off-chain.
    let mut c = Cluster::functional(2);
    let primary = c.standard_channel(0, 1, "primary", 1_000, 1);
    // Temporary channel from spare deposits, instantly.
    let temp = c.open_channel(0, 1, "temp");
    let dep = c.fund_deposit(0, 500, 1);
    c.approve_and_associate(0, 1, temp, &dep);
    // Traffic flows over the temporary channel...
    c.pay(0, temp, 200).unwrap();
    assert_eq!(c.balances(0, temp), (300, 200));
    // ...then Alice merges: she routes the 200 back to herself by paying
    // over the primary channel in the opposite direction (the two-party
    // degenerate case of the paper's cycle payment).
    c.pay(1, temp, 200).unwrap(); // Bob returns over temp...
    c.pay(0, primary, 200).unwrap(); // ...Alice compensates over primary.
    assert_eq!(c.balances(0, temp), (500, 0), "temp back to neutral");
    // Off-chain close of the temporary channel: zero blockchain writes.
    let s = c.settle_channel(0, temp).unwrap();
    assert_eq!(s.kind, SettleKind::OffChain);
    assert_eq!(c.node(0).broadcasts.len(), 0);
    // The freed deposit can fund something else immediately.
    let p = c.node(0).enclave.program().unwrap();
    assert_eq!(p.book_ref().free_deposits().len(), 1);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Random mutations of a legitimate sealed message are always rejected
    /// and never panic the enclave.
    #[test]
    fn prop_mutated_wire_rejected(flip_at in 0usize..200, xor in 1u8..255) {
        let mut c = Cluster::functional(2);
        c.connect(0, 1);
        let chan = c.standard_channel(0, 1, "fuzz", 100, 1);
        let mut wire = {
            let node0 = c.node_mut(0);
            let outcome = node0
                .enclave
                .call(0, Command::Pay { id: chan, amount: 1, count: 1 })
                .unwrap()
                .unwrap();
            outcome
                .into_iter()
                .find_map(|e| match e {
                    teechain::Effect::Send { wire, .. } => Some(wire),
                    _ => None,
                })
                .expect("payment message")
        };
        let idx = flip_at % wire.len();
        wire[idx] ^= xor;
        let before = c.balances(1, chan);
        let result = c.op_now(1, Command::Deliver { wire });
        // Either rejected outright, or (if only the cost-class byte was
        // flipped, which is outside the AEAD) accepted identically — but
        // never a divergent state.
        match result {
            Err(_) => prop_assert_eq!(c.balances(1, chan), before),
            Ok(_) => prop_assert_eq!(c.balances(1, chan).0, before.0 + 1),
        }
    }
}
