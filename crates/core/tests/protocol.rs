//! End-to-end protocol tests over the simulated network and blockchain,
//! driven through the typed operation API (submit → `Completion`).

use teechain::enclave::Command;
use teechain::ops::{OpError, OpOutput, SettleKind};
use teechain::testkit::Cluster;
use teechain::types::MultihopStage;
use teechain::{ChannelId, ProtocolError};

#[test]
fn session_establishment() {
    let mut c = Cluster::functional(2);
    c.connect(0, 1);
    assert_eq!(c.node(0).enclave.program().unwrap().session_count(), 1);
    assert_eq!(c.node(1).enclave.program().unwrap().session_count(), 1);
}

#[test]
fn channel_opens_in_both_directions() {
    let mut c = Cluster::functional(2);
    c.connect(0, 1);
    let id = c.open_channel(0, 1, "c1");
    for i in [0, 1] {
        let chan = c.node(i).enclave.program().unwrap().channel(&id).unwrap();
        assert!(chan.is_open);
        assert_eq!(chan.my_bal, 0);
    }
}

#[test]
fn deposit_approval_and_association() {
    let mut c = Cluster::functional(2);
    let chan = c.standard_channel(0, 1, "c1", 1000, 1);
    assert_eq!(c.balances(0, chan), (1000, 0));
    assert_eq!(c.balances(1, chan), (0, 1000));
}

#[test]
fn simple_payments_move_balances() {
    let mut c = Cluster::functional(2);
    let chan = c.standard_channel(0, 1, "c1", 1000, 1);
    // The completion IS the acknowledgement (the paper's latency
    // endpoint): typed, exactly once.
    let receipt = c.pay(0, chan, 300).unwrap();
    assert_eq!(
        (receipt.chan, receipt.amount, receipt.count),
        (chan, 300, 1)
    );
    assert_eq!(c.balances(0, chan), (700, 300));
    assert_eq!(c.balances(1, chan), (300, 700));
    // Pay back.
    let receipt = c.pay(1, chan, 100).unwrap();
    assert_eq!(receipt.amount, 100);
    assert_eq!(c.balances(0, chan), (800, 200));
}

#[test]
fn overspend_rejected() {
    let mut c = Cluster::functional(2);
    let chan = c.standard_channel(0, 1, "c1", 100, 1);
    assert_eq!(
        c.pay(0, chan, 101).unwrap_err(),
        OpError::Rejected(ProtocolError::InsufficientBalance)
    );
    assert_eq!(c.balances(0, chan), (100, 0));
}

#[test]
fn bidirectional_funding() {
    let mut c = Cluster::functional(2);
    let chan = c.standard_channel(0, 1, "c1", 500, 1);
    // Node 1 funds its side too.
    let dep = c.fund_deposit(1, 700, 1);
    c.approve_and_associate(1, 0, chan, &dep);
    assert_eq!(c.balances(0, chan), (500, 700));
    assert_eq!(c.balances(1, chan), (700, 500));
}

#[test]
fn dissociation_returns_deposit() {
    let mut c = Cluster::functional(2);
    c.connect(0, 1);
    let chan = c.open_channel(0, 1, "c1");
    let dep = c.fund_deposit(0, 400, 1);
    c.approve_and_associate(0, 1, chan, &dep);
    assert_eq!(c.balances(0, chan), (400, 0));
    let p = c.handle(0).dissociate_deposit(chan, dep.outpoint);
    let out = c.wait(p).unwrap();
    assert_eq!(
        out,
        OpOutput::DepositDissociated {
            chan,
            outpoint: dep.outpoint
        }
    );
    assert_eq!(c.balances(0, chan), (0, 0));
}

#[test]
fn dissociation_blocked_when_balance_spent() {
    let mut c = Cluster::functional(2);
    let chan = c.standard_channel(0, 1, "c1", 400, 1);
    c.pay(0, chan, 350).unwrap();
    // Our balance (50) no longer covers the 400 deposit: double-spend guard.
    let outpoint = {
        let p = c.node(0).enclave.program().unwrap();
        p.channel(&chan).unwrap().my_deps[0]
    };
    assert_eq!(
        c.op(0, Command::DissociateDeposit { id: chan, outpoint })
            .unwrap_err(),
        OpError::Rejected(ProtocolError::InsufficientBalance)
    );
}

#[test]
fn deposit_rebalancing_between_channels() {
    // §4.1 payment deposit rebalancing: move a deposit from one channel
    // to another without touching the blockchain.
    let mut c = Cluster::functional(3);
    c.connect(0, 1);
    c.connect(0, 2);
    let c01 = c.open_channel(0, 1, "c01");
    let c02 = c.open_channel(0, 2, "c02");
    let dep = c.fund_deposit(0, 500, 1);
    c.approve_and_associate(0, 1, c01, &dep);
    assert_eq!(c.balances(0, c01), (500, 0));
    let p = c.handle(0).dissociate_deposit(c01, dep.outpoint);
    c.wait(p).unwrap();
    // Now associate the same deposit with the other channel.
    c.approve_and_associate(0, 2, c02, &dep);
    assert_eq!(c.balances(0, c02), (500, 0));
    // No blockchain transactions beyond the original funding mint.
    assert_eq!(c.node(0).broadcasts.len(), 0);
}

#[test]
fn on_chain_settlement_pays_correct_balances() {
    let mut c = Cluster::functional(2);
    let chan = c.standard_channel(0, 1, "c1", 1000, 1);
    c.pay(0, chan, 250).unwrap();
    let my_settle = {
        let p = c.node(0).enclave.program().unwrap();
        p.channel(&chan).unwrap().my_settlement
    };
    let their_settle = {
        let p = c.node(0).enclave.program().unwrap();
        p.channel(&chan).unwrap().remote_settlement
    };
    let s = c.settle_channel(0, chan).unwrap();
    assert!(
        matches!(s.kind, SettleKind::OnChain(_)),
        "moved balances settle on chain: {s:?}"
    );
    c.mine(1);
    assert_eq!(c.chain_balance(&my_settle), 750);
    assert_eq!(c.chain_balance(&their_settle), 250);
    // Exactly one settlement transaction was broadcast.
    assert_eq!(c.node(0).broadcasts.len(), 1);
}

#[test]
fn neutral_channel_settles_off_chain() {
    let mut c = Cluster::functional(2);
    let chan = c.standard_channel(0, 1, "c1", 1000, 1);
    // Pay and pay back: balances return to neutral.
    c.pay(0, chan, 400).unwrap();
    c.pay(1, chan, 400).unwrap();
    let s = c.settle_channel(0, chan).unwrap();
    assert_eq!(s.kind, SettleKind::OffChain, "neutral channel: {s:?}");
    // No blockchain writes: termination was purely off-chain (§4.1),
    // placing 0 transactions instead of a settlement.
    assert_eq!(c.node(0).broadcasts.len(), 0);
    assert_eq!(c.node(1).broadcasts.len(), 0);
    assert_eq!(c.balances(0, chan), (0, 0));
}

#[test]
fn unilateral_settlement_without_counterparty() {
    // Balance correctness: node 0 reclaims funds even if node 1 vanishes.
    let mut c = Cluster::functional(2);
    let chan = c.standard_channel(0, 1, "c1", 600, 1);
    c.pay(0, chan, 100).unwrap();
    // Node 1's host dies (we simply stop delivering to it: settle runs
    // locally and broadcasts without any cooperation).
    let my_settle = {
        let p = c.node(0).enclave.program().unwrap();
        p.channel(&chan).unwrap().my_settlement
    };
    // The settle operation completes on the local broadcast — no
    // counterparty cooperation involved.
    let s = c.settle_channel(0, chan).unwrap();
    assert!(matches!(s.kind, SettleKind::OnChain(_)));
    c.mine(1);
    assert_eq!(c.chain_balance(&my_settle), 500);
}

#[test]
fn payments_after_settle_rejected() {
    let mut c = Cluster::functional(2);
    let chan = c.standard_channel(0, 1, "c1", 100, 1);
    // Neutral balances (nothing was ever paid): the settle terminates
    // off-chain, leaving an empty channel that can no longer pay.
    let s = c.settle_channel(0, chan).unwrap();
    assert_eq!(s.kind, SettleKind::OffChain);
    assert_eq!(
        c.pay(0, chan, 10).unwrap_err(),
        OpError::Rejected(ProtocolError::InsufficientBalance)
    );
}

// ---- Multi-hop payments ----

fn three_hop_cluster() -> (Cluster, ChannelId, ChannelId) {
    let mut c = Cluster::functional(3);
    let c01 = c.standard_channel(0, 1, "c01", 1000, 1);
    let c12 = c.standard_channel(1, 2, "c12", 1000, 1);
    (c, c01, c12)
}

#[test]
fn multihop_payment_completes() {
    let (mut c, c01, c12) = three_hop_cluster();
    // The typed completion reports end-to-end delivery at p1.
    let d = c.pay_multihop(&[0, 1, 2], &[c01, c12], 250, "r1").unwrap();
    assert_eq!(d.amount, 250);
    // p1 paid, p2 forwarded, p3 received.
    assert_eq!(c.balances(0, c01), (750, 250));
    assert_eq!(c.balances(1, c01), (250, 750));
    assert_eq!(c.balances(1, c12), (750, 250));
    assert_eq!(c.balances(2, c12), (250, 750));
    // Channels unlocked again.
    for (i, ch) in [(0usize, c01), (1, c01), (1, c12), (2, c12)] {
        let stage = c
            .node(i)
            .enclave
            .program()
            .unwrap()
            .channel(&ch)
            .unwrap()
            .stage;
        assert_eq!(stage, MultihopStage::Idle);
    }
}

#[test]
fn multihop_insufficient_balance_aborts_cleanly() {
    let (mut c, c01, c12) = three_hop_cluster();
    // Drain the middle hop's forwarding balance.
    c.pay(1, c12, 950).unwrap();
    // The abort unwinds backward carrying the intermediary's real
    // refusal reason, which becomes the operation's typed error.
    assert_eq!(
        c.pay_multihop(&[0, 1, 2], &[c01, c12], 500, "r2")
            .unwrap_err(),
        OpError::Remote(ProtocolError::InsufficientBalance)
    );
    // Balances unchanged and channels unlocked.
    assert_eq!(c.balances(0, c01), (1000, 0));
    let stage = c
        .node(0)
        .enclave
        .program()
        .unwrap()
        .channel(&c01)
        .unwrap()
        .stage;
    assert_eq!(stage, MultihopStage::Idle);
}

#[test]
fn multihop_sequential_payments_share_channels() {
    let (mut c, c01, c12) = three_hop_cluster();
    for k in 0..5 {
        c.pay_multihop(&[0, 1, 2], &[c01, c12], 50, &format!("r{k}"))
            .unwrap();
    }
    assert_eq!(c.balances(0, c01), (750, 250));
    assert_eq!(c.balances(2, c12), (250, 750));
}

#[test]
fn single_channel_pay_queued_while_locked() {
    // A channel in an in-flight multi-hop payment no longer refuses
    // ordinary pays: the enclave parks them on the per-channel admission
    // queue and applies them when the lock releases.
    let (mut c, c01, c12) = three_hop_cluster();
    // Start a multihop but do NOT resolve it yet: the lock is applied
    // synchronously at submission, so the channel is already locked.
    let route = teechain::RouteId([9; 32]);
    let hops = vec![c.ids[0], c.ids[1], c.ids[2]];
    let mh = c.submit(
        0,
        Command::PayMultihop {
            route,
            hops,
            channels: vec![c01, c12],
            amount: 10,
        },
    );
    // The racing direct pay queues inside the enclave...
    let pay = c.submit(
        0,
        Command::Pay {
            id: c01,
            amount: 5,
            count: 1,
        },
    );
    let enqueued = c
        .node(0)
        .enclave
        .program()
        .map(|p| p.admit_stats().enqueued)
        .unwrap();
    assert!(enqueued >= 1, "direct pay parked on the admission queue");
    // ...and both operations resolve with their typed success once the
    // network runs: the lock release drains the queue.
    c.wait::<teechain::ops::Delivered>(c.pending(mh)).unwrap();
    c.wait::<teechain::ops::Payment>(c.pending(pay)).unwrap();
    assert_eq!(c.balances(0, c01), (985, 15));
}

#[test]
fn longer_path_multihop() {
    let mut c = Cluster::functional(5);
    let mut chans = Vec::new();
    for i in 0..4 {
        chans.push(c.standard_channel(i, i + 1, &format!("c{i}"), 1000, 1));
    }
    c.pay_multihop(&[0, 1, 2, 3, 4], &chans, 123, "long")
        .unwrap();
    assert_eq!(c.balances(4, chans[3]), (123, 877));
    assert_eq!(c.balances(0, chans[0]), (877, 123));
    // Intermediate nodes net zero: +123 on the inbound channel, -123 on
    // the outbound one, against 1000 of own collateral in the outbound.
    for i in 1..4 {
        let (in_my, _) = c.balances(i, chans[i - 1]);
        let (out_my, _) = c.balances(i, chans[i]);
        assert_eq!(in_my, 123);
        assert_eq!(out_my, 877);
    }
}
