//! Cross-chain HTLC atomic swap conformance: adversarial schedules,
//! crash injection at phase boundaries with WAL-replay recovery, and a
//! property-based interleaving fuzz asserting the two-chain conservation
//! invariant.
//!
//! The protocol under test is [`teechain::swap`]: an initiator trades
//! Teechain channel balance against an HTLC locked on a second,
//! independent chain. The suite drives it through the public operation
//! API only — adversarial behaviour is injected via the host knobs
//! (`swap_withhold_funding`, `swap_withhold_verify`), crash/recover, and
//! explicit mining of the alternate chain.

use proptest::prelude::*;
use proptest::TestCaseError;
use teechain::enclave::Command;
use teechain::ops::OpError;
use teechain::swap::SwapPhase;
use teechain::testkit::{Cluster, ClusterConfig};
use teechain::types::SwapId;
use teechain::{DurabilityBackend, PersistPolicy, ProtocolError};

fn persist_cluster(n: usize, snapshot_every: u32) -> Cluster {
    Cluster::new(ClusterConfig {
        n,
        durability: DurabilityBackend::Persist(PersistPolicy { snapshot_every }),
        ..ClusterConfig::default()
    })
}

/// The swap phase node `i` records for `swap`, if it knows the swap.
fn phase(c: &Cluster, i: usize, swap: &SwapId) -> Option<SwapPhase> {
    c.node(i)
        .enclave
        .program()
        .and_then(|p| p.swap_state(swap))
        .map(|s| s.phase)
}

/// How many `SwapResolved` events node `i` emitted for `swap` — the
/// exactly-once observable (the host event log survives crashes).
fn resolved_count(c: &Cluster, i: usize, swap: &SwapId) -> usize {
    c.node(i)
        .events
        .iter()
        .filter(
            |(_, e)| matches!(e, teechain::HostEvent::SwapResolved { swap: s, .. } if s == swap),
        )
        .count()
}

/// Steps the simulation in 10 ms increments until `pred` holds, up to
/// `max_ms`. Needed in persist clusters: the monotonic-counter throttle
/// can park an operation for 100 ms+ before the enclave accepts it, so
/// phase transitions have no fixed wall-clock offset from submission.
fn run_until_true(c: &mut Cluster, max_ms: u64, mut pred: impl FnMut(&Cluster) -> bool) -> bool {
    for _ in 0..max_ms.div_ceil(10) {
        if pred(c) {
            return true;
        }
        let t = c.sim.now_ns() + 10_000_000;
        c.sim.run_until(t);
    }
    pred(c)
}

#[test]
fn happy_path_redeems_on_both_chains() {
    let mut c = Cluster::functional(2);
    let chan = c.standard_channel(0, 1, "swap-happy", 1_000, 1);
    let out = c.swap(0, chan, "happy", 250, 500, 5).unwrap();
    assert!(out.redeemed, "cooperative swap redeems");
    // Channel side: the initiator's debit is the responder's credit.
    assert_eq!(c.balances(0, chan), (750, 250));
    assert_eq!(c.balances(1, chan), (250, 750));
    // Alternate chain side: the claim pays the initiator's identity key.
    assert_eq!(c.chain2.lock().balance_p2pk(&c.ids[0]), 500);
    assert_eq!(c.chain2.lock().balance_p2pk(&c.ids[1]), 0);
    // Both parties reached a terminal phase, exactly once.
    let swap = SwapId::from_label("happy");
    assert_eq!(phase(&c, 0, &swap), Some(SwapPhase::Redeemed));
    assert_eq!(phase(&c, 1, &swap), Some(SwapPhase::Redeemed));
    assert_eq!(resolved_count(&c, 0, &swap), 1);
    assert_eq!(resolved_count(&c, 1, &swap), 1);
    // The channel is fully usable afterwards.
    c.pay(0, chan, 100).unwrap();
    assert_eq!(c.balances(0, chan), (650, 350));
}

#[test]
fn secret_withheld_past_timeout_refunds_both_sides() {
    let mut c = Cluster::functional(2);
    let chan = c.standard_channel(0, 1, "swap-withhold", 1_000, 1);
    // The initiator's host never verifies the HTLC, so the enclave never
    // reveals the secret: the canonical griefing attempt.
    c.node_mut(0).swap_withhold_verify = true;
    let out = c.swap(0, chan, "withheld", 250, 500, 5).unwrap();
    assert!(!out.redeemed, "withheld secret ends in refund");
    let swap = SwapId::from_label("withheld");
    // Initiator refunded locally at its deadline; the responder waited
    // out the HTLC timelock and reclaimed on-chain.
    assert_eq!(phase(&c, 0, &swap), Some(SwapPhase::Refunded));
    assert_eq!(phase(&c, 1, &swap), Some(SwapPhase::Refunded));
    // Channel balances are untouched...
    assert_eq!(c.balances(0, chan), (1_000, 0));
    assert_eq!(c.balances(1, chan), (0, 1_000));
    // ...and the responder's alternate-chain funds came back to it.
    assert_eq!(c.chain2.lock().balance_p2pk(&c.ids[0]), 0);
    assert_eq!(c.chain2.lock().balance_p2pk(&c.ids[1]), 500);
    assert_eq!(resolved_count(&c, 0, &swap), 1);
    assert_eq!(resolved_count(&c, 1, &swap), 1);
    // The channel unfreezes for normal use.
    c.pay(0, chan, 40).unwrap();
    assert_eq!(c.balances(0, chan), (960, 40));
}

#[test]
fn responder_never_funds_refunds_both_sides_locally() {
    let mut c = Cluster::functional(2);
    let chan = c.standard_channel(0, 1, "swap-nofund", 1_000, 1);
    c.node_mut(1).swap_withhold_funding = true;
    let out = c.swap(0, chan, "nofund", 250, 500, 5).unwrap();
    assert!(!out.redeemed);
    let swap = SwapId::from_label("nofund");
    assert_eq!(phase(&c, 0, &swap), Some(SwapPhase::Refunded));
    assert_eq!(phase(&c, 1, &swap), Some(SwapPhase::Refunded));
    assert_eq!(c.balances(0, chan), (1_000, 0));
    // Nothing ever reached the alternate chain.
    assert_eq!(c.chain2.lock().utxo_total(), 0);
}

/// The HTLC script the responder on node `i` committed to for `swap`.
fn responder_script(c: &Cluster, i: usize, swap: &SwapId) -> teechain_blockchain::ScriptPubKey {
    c.node(i)
        .enclave
        .program()
        .and_then(|p| p.swap_state(swap))
        .map(|s| s.htlc_script(&c.ids[i]))
        .expect("responder staged the swap")
}

#[test]
fn mature_htlc_delivered_late_is_refused_and_both_refund() {
    // A malicious responder host funds the HTLC but sits on the funding
    // report until the refund timelock has matured, hoping the initiator
    // debits the channel and reveals the secret while the responder can
    // already win the claim-vs-refund race on the alternate chain. The
    // enclave must refuse: confirmations are reported with the
    // verification, and a lock without timelock headroom never extracts
    // the secret.
    let mut c = Cluster::functional(2);
    let chan = c.standard_channel(0, 1, "swap-late", 1_000, 1);
    let swap = SwapId::from_label("late");
    c.node_mut(1).swap_withhold_funding = true;
    let p = c.handle(0).swap(chan, "late", 250, 500, 5);
    assert!(
        run_until_true(&mut c, 1_000, |c| phase(c, 0, &swap)
            == Some(SwapPhase::Init)
            && phase(c, 1, &swap) == Some(SwapPhase::Init)),
        "swap parked at Init on both sides"
    );
    // Fund exactly the committed script, then let the refund path mature
    // before the responder's enclave ever hears about the funding.
    let outpoint = c.chain2.lock().mint(responder_script(&c, 1, &swap), 500);
    c.chain2.lock().mine_blocks(5);
    c.submit(1, Command::SwapFunded { swap, outpoint });
    let out = c.wait(p).unwrap();
    assert!(!out.redeemed, "late mature lock must not redeem");
    // No channel movement, no claim, and the secret never left the
    // initiator's enclave; the responder reclaimed its HTLC on-chain.
    assert_eq!(phase(&c, 0, &swap), Some(SwapPhase::Refunded));
    assert_eq!(phase(&c, 1, &swap), Some(SwapPhase::Refunded));
    assert_eq!(c.balances(0, chan), (1_000, 0));
    assert_eq!(c.balances(1, chan), (0, 1_000));
    assert_eq!(c.chain2.lock().balance_p2pk(&c.ids[0]), 0, "no claim");
    assert_eq!(c.chain2.lock().balance_p2pk(&c.ids[1]), 500, "refund");
    assert_eq!(resolved_count(&c, 0, &swap), 1);
    assert_eq!(resolved_count(&c, 1, &swap), 1);
}

#[test]
fn late_funding_after_refund_reclaims_stranded_htlc() {
    // The stranded-funding race: the responder aborts at its deadline
    // with no outpoint on record (the funding report was delayed — e.g.
    // a counter-throttled replay after a crash in the funding window),
    // yet the HTLC is already minted on-chain. The late SwapFunded must
    // not be dropped: the enclave adopts the outpoint and its chain
    // watch drives the timelocked reclaim.
    let mut c = Cluster::functional(2);
    let chan = c.standard_channel(0, 1, "swap-stranded", 1_000, 1);
    let swap = SwapId::from_label("stranded");
    c.node_mut(1).swap_withhold_funding = true;
    let out = c.swap(0, chan, "stranded", 250, 500, 5).unwrap();
    assert!(!out.redeemed);
    assert_eq!(phase(&c, 1, &swap), Some(SwapPhase::Refunded));
    // The delayed funding report lands only now, on an already-refunded
    // swap backed by a real on-chain lock.
    let outpoint = c.chain2.lock().mint(responder_script(&c, 1, &swap), 500);
    c.submit(1, Command::SwapFunded { swap, outpoint });
    c.settle_network();
    // The minted value is not stranded: the responder waited out the
    // timelock and reclaimed it, and the late adoption did not
    // re-resolve the already-terminal swap.
    assert_eq!(c.chain2.lock().balance_p2pk(&c.ids[1]), 500);
    assert_eq!(c.chain2.lock().utxo_total(), 500);
    assert_eq!(phase(&c, 1, &swap), Some(SwapPhase::Refunded));
    assert_eq!(resolved_count(&c, 1, &swap), 1);
    assert_eq!(c.balances(1, chan), (0, 1_000), "no channel movement");
}

#[test]
fn premature_settle_while_swap_pending_is_rejected() {
    let mut c = Cluster::functional(2);
    let chan = c.standard_channel(0, 1, "swap-grief", 1_000, 1);
    // Submit the swap but do not run the network: the initiator's swap
    // entry is staged synchronously, so a settle racing it must bounce.
    let p = c.handle(0).swap(chan, "grief", 250, 500, 5);
    let refused = c.op_now(0, Command::Settle { id: chan });
    assert!(
        matches!(refused, Err(OpError::Rejected(ProtocolError::SwapPending))),
        "settle during a pending swap must be refused: {refused:?}"
    );
    // The swap itself is unharmed by the settle attempt...
    let out = c.wait(p).unwrap();
    assert!(out.redeemed);
    // ...and once it is terminal, settlement proceeds normally.
    c.settle_channel(0, chan).unwrap();
}

#[test]
fn remote_settle_request_while_swap_pending_is_rejected() {
    let mut c = Cluster::functional(2);
    let chan = c.standard_channel(0, 1, "swap-grief2", 1_000, 1);
    let swap = SwapId::from_label("grief2");
    // Stage a swap at the initiator only (no network has run), then have
    // the *responder* — which has not yet heard of the swap — push a
    // settlement. Its SettleRequest reaches an enclave with a pending
    // swap and is refused at the door; the swap still reaches a terminal
    // phase on its own.
    let p = c.handle(0).swap(chan, "grief2", 250, 500, 5);
    let settle_op = c.submit(1, Command::Settle { id: chan });
    c.settle_network();
    assert!(
        c.node(0)
            .delivery_errors
            .iter()
            .any(|e| matches!(e, ProtocolError::SwapPending)),
        "initiator's enclave refused the remote settle request"
    );
    // The responder's settle never completed: no terminal event arrived.
    let settled = c.wait::<teechain::ops::OpOutput>(c.pending(settle_op));
    assert!(
        matches!(settled, Err(OpError::Timeout { .. })),
        "remote-rejected settle must not report success: {settled:?}"
    );
    // The swap itself reached a terminal phase — it was not stranded by
    // the settle attempt racing it.
    c.wait(p).unwrap();
    assert!(!phase(&c, 0, &swap).unwrap().pending());
    assert_eq!(resolved_count(&c, 0, &swap), 1);
}

#[test]
fn crash_at_init_boundary_recovers_and_refunds_exactly_once() {
    let mut c = persist_cluster(2, 4);
    let chan = c.standard_channel(0, 1, "swap-crash-init", 1_000, 1);
    let swap = SwapId::from_label("crash-init");
    // Hold the responder at Init (it stores the swap, host never funds),
    // then kill the initiator with the swap staged and WAL-committed.
    c.node_mut(1).swap_withhold_funding = true;
    let p = c.handle(0).swap(chan, "crash-init", 250, 500, 5);
    assert!(
        run_until_true(&mut c, 1_000, |c| phase(c, 0, &swap)
            == Some(SwapPhase::Init)
            && phase(c, 1, &swap) == Some(SwapPhase::Init)),
        "swap parked at Init on both sides"
    );
    c.crash_node(0);
    c.settle_network();
    // The swap operation died with the enclave; the *swap* did not.
    assert!(matches!(c.wait(p), Err(OpError::Timeout { .. }) | Ok(_)));
    c.recover_node(0).unwrap();
    // Recovery replayed the WAL: the Init-phase swap is back, and the
    // recovered enclave re-armed its own deadline check.
    c.settle_network();
    assert_eq!(phase(&c, 0, &swap), Some(SwapPhase::Refunded));
    assert_eq!(phase(&c, 1, &swap), Some(SwapPhase::Refunded));
    assert_eq!(c.balances(0, chan), (1_000, 0), "no value moved");
    assert_eq!(resolved_count(&c, 0, &swap), 1, "exactly-once on 0");
    assert_eq!(resolved_count(&c, 1, &swap), 1, "exactly-once on 1");
}

#[test]
fn crash_at_locked_boundary_recovers_and_refunds_on_chain() {
    let mut c = persist_cluster(2, 4);
    let chan = c.standard_channel(0, 1, "swap-crash-lock", 1_000, 1);
    let swap = SwapId::from_label("crash-lock");
    // Hold the initiator at Locked (host never verifies), then kill the
    // responder with its HTLC live on the alternate chain.
    c.node_mut(0).swap_withhold_verify = true;
    let p = c.handle(0).swap(chan, "crash-lock", 250, 500, 5);
    assert!(
        run_until_true(&mut c, 1_000, |c| phase(c, 0, &swap)
            == Some(SwapPhase::Locked)
            && phase(c, 1, &swap) == Some(SwapPhase::Locked)),
        "swap parked at Locked on both sides"
    );
    assert_eq!(c.chain2.lock().utxo_total(), 500, "HTLC is live");
    c.crash_node(1);
    let t = c.sim.now_ns() + 50_000_000;
    c.sim.run_until(t);
    c.recover_node(1).unwrap();
    c.settle_network();
    c.wait(p).unwrap();
    // Initiator aborted locally at its deadline; the recovered responder
    // watched the chain, waited out the timelock and reclaimed.
    assert_eq!(phase(&c, 0, &swap), Some(SwapPhase::Refunded));
    assert_eq!(phase(&c, 1, &swap), Some(SwapPhase::Refunded));
    assert_eq!(c.chain2.lock().balance_p2pk(&c.ids[1]), 500);
    assert_eq!(c.balances(0, chan), (1_000, 0));
    assert_eq!(resolved_count(&c, 1, &swap), 1, "exactly-once on 1");
}

#[test]
fn crash_at_redeemed_boundary_responder_learns_secret_from_chain() {
    let mut c = persist_cluster(2, 4);
    let chan = c.standard_channel(0, 1, "swap-crash-redeem", 1_000, 1);
    let swap = SwapId::from_label("crash-redeem");
    // Park both sides at Locked, crash the responder, then let the
    // initiator commit: the claim lands on the alternate chain but the
    // SwapSecret message is lost with the dead responder.
    c.node_mut(0).swap_withhold_verify = true;
    let p = c.handle(0).swap(chan, "crash-redeem", 250, 500, 5);
    assert!(
        run_until_true(&mut c, 1_000, |c| phase(c, 1, &swap)
            == Some(SwapPhase::Locked)),
        "responder parked at Locked"
    );
    c.crash_node(1);
    let t = c.sim.now_ns() + 10_000_000;
    c.sim.run_until(t);
    // The host-side verification the adversary withheld, re-driven
    // explicitly: the initiator redeems while its peer is dead.
    c.node_mut(0).swap_withhold_verify = false;
    let outpoint = c
        .node(0)
        .enclave
        .program()
        .and_then(|p| p.swap_state(&swap))
        .and_then(|s| s.htlc_outpoint)
        .expect("locked swap records its outpoint");
    let confirmations = c.chain2.lock().confirmations(&outpoint.txid);
    c.submit(
        0,
        Command::SwapHtlcVerified {
            swap,
            valid: true,
            confirmations,
        },
    );
    assert!(
        run_until_true(&mut c, 1_000, |c| phase(c, 0, &swap)
            == Some(SwapPhase::Redeemed)),
        "initiator committed while its peer is dead"
    );
    assert_eq!(c.chain2.lock().balance_p2pk(&c.ids[0]), 500, "claim landed");
    c.wait(p).unwrap();
    // Recovery replays the WAL to Locked; the chain-watch tick finds the
    // confirmed claim, extracts the preimage and credits the channel —
    // the exactly-once redeem on the responder side.
    c.recover_node(1).unwrap();
    c.settle_network();
    assert_eq!(phase(&c, 1, &swap), Some(SwapPhase::Redeemed));
    assert_eq!(c.balances(1, chan), (250, 750), "responder credited once");
    assert_eq!(c.balances(0, chan), (750, 250));
    assert_eq!(resolved_count(&c, 1, &swap), 1, "exactly-once on 1");
}

#[test]
fn recovery_is_idempotent_across_double_crash() {
    // Crash, recover, crash again before anything new commits, recover
    // again: WAL replay must not double-apply the swap's Pay delta.
    let mut c = persist_cluster(2, 4);
    let chan = c.standard_channel(0, 1, "swap-double", 1_000, 1);
    let out = c.swap(0, chan, "double", 300, 600, 5).unwrap();
    assert!(out.redeemed);
    for _ in 0..2 {
        c.crash_node(0);
        c.settle_network();
        c.recover_node(0).unwrap();
        c.settle_network();
        assert_eq!(c.balances(0, chan), (700, 300), "no double-apply");
        assert_eq!(
            phase(&c, 0, &SwapId::from_label("double")),
            Some(SwapPhase::Redeemed)
        );
    }
    // The recovered state is live: re-handshake and keep paying.
    c.connect(0, 1);
    c.pay(0, chan, 100).unwrap();
    assert_eq!(c.balances(0, chan), (600, 400));
}

#[test]
fn duplicate_swap_id_and_concurrent_swap_on_channel_rejected() {
    let mut c = Cluster::functional(2);
    let chan = c.standard_channel(0, 1, "swap-dup", 1_000, 1);
    let out = c.swap(0, chan, "dup", 100, 200, 5).unwrap();
    assert!(out.redeemed);
    // Same SwapId again: refused outright.
    let again = c.swap(0, chan, "dup", 100, 200, 5);
    assert!(
        matches!(again, Err(OpError::Rejected(ProtocolError::BadMessage))),
        "{again:?}"
    );
    // Two swaps racing on one channel: the second is refused while the
    // first is pending.
    let _p1 = c.handle(0).swap(chan, "race-a", 100, 200, 5);
    let p2 = c.handle(0).swap(chan, "race-b", 100, 200, 5);
    let err = c.wait(p2).unwrap_err();
    assert!(
        matches!(err, OpError::Rejected(ProtocolError::SwapPending)),
        "{err:?}"
    );
}

// ---- Property-based interleaving fuzz ----
//
// A randomized schedule: adversarial withholding on either side,
// optional crash of either party at a random early instant, recovery,
// then run to quiescence. Whatever happened, the two-chain conservation
// invariant must hold: channel value is conserved, the responder redeems
// only if the initiator committed, no swap stays pending, and the
// alternate-chain HTLC resolves to exactly one owner.

#[derive(Debug, Clone)]
struct Schedule {
    amount: u64,
    alt_amount: u64,
    timeout_blocks: u64,
    withhold_verify: bool,
    withhold_funding: bool,
    /// 0 = none, 1 = crash initiator, 2 = crash responder.
    crash: u8,
    /// When to crash, in ms after submission (before the 2s deadline).
    crash_at_ms: u64,
    seed: u64,
}

fn run_schedule(s: &Schedule) -> Result<(), TestCaseError> {
    const FUNDING: u64 = 1_000;
    let mut c = Cluster::new(ClusterConfig {
        n: 2,
        durability: DurabilityBackend::Persist(PersistPolicy { snapshot_every: 4 }),
        seed: s.seed,
        ..ClusterConfig::default()
    });
    let chan = c.standard_channel(0, 1, "swap-fuzz", FUNDING, 1);
    c.node_mut(0).swap_withhold_verify = s.withhold_verify;
    c.node_mut(1).swap_withhold_funding = s.withhold_funding;
    let swap = SwapId::from_label("fuzz");
    let _p = c
        .handle(0)
        .swap(chan, "fuzz", s.amount, s.alt_amount, s.timeout_blocks);
    if s.crash > 0 {
        let t = c.sim.now_ns() + s.crash_at_ms * 1_000_000;
        c.sim.run_until(t);
        let victim = if s.crash == 1 { 0 } else { 1 };
        c.crash_node(victim);
        c.sim.run_until(t + 100_000_000);
        c.recover_node(victim)
            .map_err(|e| TestCaseError::Fail(format!("recovery failed: {e:?}")))?;
    }
    c.settle_network();
    // Drain any refund/chain-watch tail the first quiescence left armed.
    c.settle_network();

    let init = phase(&c, 0, &swap);
    let resp = phase(&c, 1, &swap);
    if init.is_none() {
        // An initiator crash destroyed the operation before the enclave
        // accepted it (the command was parked on the host's counter
        // throttle, which does not survive a crash): the swap never
        // existed anywhere, so nothing may have moved.
        prop_assert!(
            resp.is_none(),
            "responder knows a swap the initiator never staged"
        );
        prop_assert_eq!(c.balances(0, chan), (FUNDING, 0));
        prop_assert_eq!(c.chain2.lock().utxo_total(), 0);
        return Ok(());
    }
    for (who, p) in [("initiator", init), ("responder", resp)] {
        if let Some(p) = p {
            prop_assert!(!p.pending(), "{} still pending: {:?}", who, p);
        }
    }
    if resp == Some(SwapPhase::Redeemed) {
        prop_assert_eq!(init, Some(SwapPhase::Redeemed));
    }
    // Channel conservation, from both views.
    let (my0, remote0) = c.balances(0, chan);
    let (my1, remote1) = c.balances(1, chan);
    prop_assert_eq!(my0 + remote0, FUNDING);
    prop_assert_eq!(my1 + remote1, FUNDING);
    // Atomicity: the initiator's debit tracks its recorded outcome, and
    // each party's channel movement matches its terminal phase.
    match init {
        Some(SwapPhase::Redeemed) => prop_assert_eq!(my0, FUNDING - s.amount),
        _ => prop_assert_eq!(my0, FUNDING),
    }
    match resp {
        Some(SwapPhase::Redeemed) => prop_assert_eq!(my1, s.amount),
        _ => prop_assert_eq!(my1, 0),
    }
    // Alternate-chain conservation: whatever was minted into the HTLC is
    // owned by exactly one party (or still locked under an unspendable
    // orphan if the swap aborted pre-Lock — never both).
    let claimed = c.chain2.lock().balance_p2pk(&c.ids[0]);
    let refunded = c.chain2.lock().balance_p2pk(&c.ids[1]);
    prop_assert!(
        !(claimed > 0 && refunded > 0),
        "HTLC resolved to both parties: claimed={} refunded={}",
        claimed,
        refunded
    );
    if init == Some(SwapPhase::Redeemed) {
        prop_assert_eq!(claimed, s.alt_amount);
    }
    if resp == Some(SwapPhase::Refunded) {
        // A responder that locked an HTLC reclaims it; one that never
        // funded has nothing on chain. Either way it never loses value.
        prop_assert!(refunded == s.alt_amount || c.chain2.lock().utxo_total() == 0 || claimed > 0);
    }
    // Exactly-once resolution on every party that knows the swap.
    prop_assert!(resolved_count(&c, 0, &swap) <= 1);
    prop_assert!(resolved_count(&c, 1, &swap) <= 1);
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn conservation_holds_under_random_schedules(
        amount in 1u64..401,
        alt_amount in 1u64..401,
        timeout_blocks in 1u64..7,
        withhold_verify in any::<bool>(),
        withhold_funding in any::<bool>(),
        crash in 0u8..3,
        crash_at_ms in 0u64..301,
        seed in 1u64..100_000,
    ) {
        run_schedule(&Schedule {
            amount,
            alt_amount,
            timeout_blocks,
            withhold_verify,
            withhold_funding,
            crash,
            crash_at_ms,
            seed,
        })?;
    }
}
