//! Crash/restart fault injection against the §6.2 persistence stack:
//! WAL + sealed snapshots + monotonic-counter roll-back detection,
//! exercised end-to-end through the simulator.

use teechain::enclave::Command;
use teechain::ops::OpError;
use teechain::testkit::{Cluster, ClusterConfig};
use teechain::{DurabilityBackend, PersistPolicy, ProtocolError};

fn persist_cluster(n: usize, snapshot_every: u32) -> Cluster {
    Cluster::new(ClusterConfig {
        n,
        durability: DurabilityBackend::Persist(PersistPolicy { snapshot_every }),
        ..ClusterConfig::default()
    })
}

#[test]
fn killed_mid_payment_recovers_from_wal_and_snapshot() {
    let mut c = persist_cluster(2, 4);
    let chan = c.standard_channel(0, 1, "crash", 10_000, 1);
    for _ in 0..5 {
        c.pay(0, chan, 100).unwrap();
    }
    let before = c.balances(1, chan);
    assert_eq!(before, (500, 9_500));
    // The snapshot cadence (4) must have both compacted at least once and
    // left live WAL records — recovery below exercises snapshot + replay.
    let stats = c.store(1).unwrap().lock().stats();
    assert!(stats.compactions >= 1, "snapshot taken: {stats:?}");
    assert!(
        stats.commits > stats.compactions,
        "WAL records written: {stats:?}"
    );

    // Kill the payee with a payment in flight: the payer has issued it,
    // the message is on the wire, the payee never processes it.
    let inflight = c.submit(
        0,
        Command::Pay {
            id: chan,
            amount: 77,
            count: 1,
        },
    );
    c.crash_node(1);
    c.settle_network();
    assert!(c.node(1).enclave.is_crashed());
    // The in-flight payment's operation is typed-dead, not silently gone.
    let err = c
        .wait::<teechain::ops::Payment>(c.pending(inflight))
        .unwrap_err();
    assert!(matches!(err, OpError::Timeout { .. }), "{err:?}");

    let recovery = c.recover_node(1).unwrap();
    assert_eq!(recovery.channels, 1, "{recovery:?}");
    // Balances are exactly the last durably committed state; the
    // in-flight payment was never applied and never acked.
    assert_eq!(c.balances(1, chan), before, "recovered balances intact");
    // Identity survived the crash (it is in the durable state).
    assert_eq!(
        c.node(1).enclave.program().unwrap().identity_pk(),
        Some(c.ids[1])
    );

    // Session keys are volatile by design: the recovered node
    // re-handshakes, after which payments flow again.
    c.connect(1, 0);
    c.pay(0, chan, 100).unwrap();
    assert_eq!(c.balances(1, chan).0, 600);
}

#[test]
fn recovered_node_settles_on_chain_with_correct_balances() {
    let mut c = persist_cluster(2, 3);
    let chan = c.standard_channel(0, 1, "settle", 10_000, 1);
    for _ in 0..3 {
        c.pay(0, chan, 150).unwrap();
    }
    c.crash_node(1);
    c.settle_network();
    c.recover_node(1).unwrap();
    c.connect(1, 0);
    // The recovered enclave settles unilaterally; its on-chain payout
    // must equal its perceived balance (balance correctness across a
    // crash).
    let my_settle = {
        let p = c.node(1).enclave.program().unwrap();
        p.channel(&chan).unwrap().my_settlement
    };
    c.settle_channel(1, chan).unwrap();
    c.mine(1);
    assert_eq!(c.chain_balance(&my_settle), 450);
}

#[test]
fn forged_stale_storage_rejected_and_enclave_freezes() {
    let mut c = persist_cluster(2, 4);
    let chan = c.standard_channel(0, 1, "forge", 10_000, 1);
    c.pay(0, chan, 100).unwrap();
    c.pay(0, chan, 100).unwrap();
    // A malicious host copies the storage now...
    let (old_snapshot, old_log) = c.store(0).unwrap().lock().raw_dump().unwrap();
    // ...lets two more payments commit (counter advances)...
    c.pay(0, chan, 100).unwrap();
    c.pay(0, chan, 100).unwrap();
    // ...then crashes the node and restores the stale copy.
    c.crash_node(0);
    c.store(0)
        .unwrap()
        .lock()
        .restore_raw(old_snapshot, old_log)
        .unwrap();
    let err = c.recover_node(0).unwrap_err();
    assert!(
        matches!(
            err,
            OpError::Rejected(ProtocolError::StaleState { found, expected }) if found < expected
        ),
        "stale storage must be detected: {err:?}"
    );
    // The enclave froze itself: nothing runs on rolled-back state.
    let refused = c.op(
        0,
        Command::Pay {
            id: chan,
            amount: 1,
            count: 1,
        },
    );
    assert!(
        matches!(refused, Err(OpError::Rejected(ProtocolError::Frozen))),
        "{refused:?}"
    );
}

#[test]
fn torn_wal_tail_is_treated_as_rollback() {
    // Snapshot cadence high enough that every payment lives in the WAL.
    let mut c = persist_cluster(2, 100);
    let chan = c.standard_channel(0, 1, "torn", 10_000, 1);
    c.pay(0, chan, 100).unwrap();
    c.pay(0, chan, 100).unwrap();
    // Host crash tears the tail off the last append: the final commit is
    // gone but the hardware counter proves it happened.
    c.crash_node(0);
    c.store(0).unwrap().lock().tear_tail(4).unwrap();
    let err = c.recover_node(0).unwrap_err();
    assert!(
        matches!(err, OpError::Rejected(ProtocolError::StaleState { .. })),
        "torn tail is indistinguishable from roll-back: {err:?}"
    );
}

#[test]
fn group_commit_batches_concurrent_receipts() {
    // Three spokes pay one hub inside a single counter-throttle window:
    // the first receipt commits alone, the other two are stashed and
    // then group-committed — one counter increment, one WAL append.
    let mut c = persist_cluster(4, 1_000);
    let chans: Vec<_> = (1..4)
        .map(|i| c.standard_channel(i, 0, &format!("spoke{i}"), 10_000, 1))
        .collect();
    // Let every node's counter throttle expire, then freeze a baseline.
    let t = c.sim.now_ns() + 300_000_000;
    c.sim.run_until(t);
    let base = c.store(0).unwrap().lock().stats().commits;
    // Submit all three spoke payments at the same instant (no wait in
    // between), so the receipts land inside one hub throttle window.
    let pends: Vec<_> = (0..chans.len())
        .map(|k| {
            c.submit(
                1 + k,
                Command::Pay {
                    id: chans[k],
                    amount: 100,
                    count: 1,
                },
            )
        })
        .collect();
    c.settle_network();
    for p in pends {
        c.wait::<teechain::ops::Payment>(c.pending(p))
            .expect("spoke payment acked");
    }
    for chan in &chans {
        assert_eq!(c.balances(0, *chan).0, 100, "every payment applied");
    }
    let commits = c.store(0).unwrap().lock().stats().commits - base;
    assert_eq!(
        commits, 2,
        "3 receipts cost 2 commits: 1 immediate + 1 group commit"
    );
}

#[test]
fn recover_on_live_enclave_rejected() {
    // A malicious host must not be able to feed the (genuine!) WAL to a
    // *running* enclave: relative Pay deltas would double-apply and
    // inflate balances. Recovery is only legal as the first ecall of a
    // fresh program instance.
    let mut c = persist_cluster(2, 100);
    let chan = c.standard_channel(0, 1, "live", 10_000, 1);
    c.pay(0, chan, 100).unwrap();
    let before = c.balances(1, chan);
    let recovery = c.store(1).unwrap().lock().recover().unwrap();
    let result = c.op(
        1,
        Command::Recover {
            snapshot: recovery.snapshot,
            log: recovery.log,
        },
    );
    assert!(result.is_err(), "live replay must be refused: {result:?}");
    assert_eq!(c.balances(1, chan), before, "no double-apply");
    // Refusal is not a freeze: the live enclave keeps working.
    c.pay(0, chan, 50).unwrap();
    assert_eq!(c.balances(1, chan).0, before.0 + 50);
}

#[test]
fn recovery_on_fresh_node_is_a_no_op() {
    let mut c = persist_cluster(1, 4);
    c.crash_node(0);
    let recovery = c.recover_node(0).unwrap();
    assert_eq!(
        (recovery.channels, recovery.deposits, recovery.commits),
        (0, 0, 0)
    );
}
