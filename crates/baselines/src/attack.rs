//! The transaction-delay attack (§1, §2.2).
//!
//! Synchronous-access payment networks assume a victim can place a
//! transaction on chain within τ. Spam floods, fee spikes and censoring
//! miners break that assumption ([54, 58, 27, 29, 16, 28]); this module
//! scripts the attack against the Lightning baseline and shows that the
//! identical adversary gains nothing against Teechain.

use crate::ln::LnChannel;
use teechain_blockchain::{AdversaryPolicy, Chain};

/// Outcome of a delay attack against an LN channel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AttackOutcome {
    /// Funds the cheater ended up with on chain.
    pub cheater_balance: u64,
    /// Funds the honest victim ended up with on chain.
    pub victim_balance: u64,
    /// Whether the theft succeeded.
    pub theft_succeeded: bool,
}

/// Runs the delay attack: A pays B off-chain, then broadcasts the stale
/// pre-payment commitment while censoring B's justice transaction for
/// `censor_blocks` blocks. The cheater re-submits its sweep every block
/// (it only becomes timelock-valid after τ). The theft succeeds iff the
/// justice transaction is delayed *beyond* the reaction window τ — i.e.
/// `censor_blocks > tau`.
pub fn delay_attack_on_ln(value: u64, payment: u64, tau: u64, censor_blocks: u64) -> AttackOutcome {
    let mut chain = Chain::new();
    let mut ch = LnChannel::open(&mut chain, 7, value, tau);
    ch.pay_a_to_b(payment).expect("payment fits");
    // A broadcasts the stale state (pre-payment: everything back to A).
    let stale = ch.revoked[0];
    let commitment = ch.cheat_broadcast(&mut chain, &stale).expect("accepted");
    chain.mine_blocks(1);
    // B notices and fires the justice transaction immediately — but the
    // adversary delays it.
    let justice = ch.justice_tx(&commitment);
    let justice_id = justice.txid();
    chain.set_policy(AdversaryPolicy::DelayTargets {
        targets: [justice_id].into(),
        blocks: censor_blocks,
    });
    let _ = chain.submit(justice);
    // The cheater races: every block, it (re)submits its sweep, which the
    // miner accepts as soon as the timelock elapses.
    for _ in 0..(censor_blocks + 2) {
        let _ = chain.submit(ch.cheater_sweep(&commitment));
        chain.mine_block();
    }
    chain.mine_blocks(2);
    AttackOutcome {
        cheater_balance: chain.balance_p2pk(&ch.key_a.pk),
        victim_balance: chain.balance_p2pk(&ch.key_b.pk),
        theft_succeeded: chain.balance_p2pk(&ch.key_a.pk) >= value,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn short_delay_attack_fails() {
        // The victim's justice tx is delayed less than τ: punishment lands.
        let out = delay_attack_on_ln(1000, 600, 10, 5);
        assert!(!out.theft_succeeded);
        assert_eq!(out.victim_balance, 1000, "justice claims everything");
    }

    #[test]
    fn long_delay_attack_steals_funds() {
        // Delay > τ: the cheater sweeps the stale commitment and keeps the
        // 600 it had already paid to the victim off-chain.
        let out = delay_attack_on_ln(1000, 600, 10, 11);
        assert!(out.theft_succeeded);
        assert_eq!(out.cheater_balance, 1000);
        assert_eq!(out.victim_balance, 0);
    }

    #[test]
    fn attack_cost_grows_with_tau() {
        // Larger τ makes the attack harder (needs longer censorship) —
        // the liveness/safety trade-off of §2.2. The boundary is exact:
        // censoring for τ still loses the race; τ+1 wins it.
        assert!(!delay_attack_on_ln(1000, 600, 50, 50).theft_succeeded);
        assert!(delay_attack_on_ln(1000, 600, 50, 51).theft_succeeded);
    }
}
