//! Scalable Funding of Micropayment Channels (Burchert, Decker,
//! Wattenhofer, SSS 2017): blockchain-cost model from Table 4.
//!
//! SFMC amortizes funding over `n` channels shared by a group of `p > 2`
//! parties, with funding-tree depth `i` and DMC-style invalidation depth
//! `d`. Costs are per channel.

/// Transactions per channel, bilateral close: `2 / n`.
pub fn txs_bilateral(n: u64) -> f64 {
    2.0 / n as f64
}

/// Transactions per channel, unilateral close:
/// `(1 + i)/n + (1 + d + 2)`.
pub fn txs_unilateral(n: u64, i: u64, d: u64) -> f64 {
    (1 + i) as f64 / n as f64 + (1 + d + 2) as f64
}

/// Cost per channel, bilateral: `2p / n` (each shared tx carries `p`
/// signatures and keys).
pub fn cost_bilateral(n: u64, p: u64) -> f64 {
    2.0 * p as f64 / n as f64
}

/// Cost per channel, unilateral: `(1 + i)(p/n) + 2(1 + d + 2)`.
pub fn cost_unilateral(n: u64, p: u64, i: u64, d: u64) -> f64 {
    (1 + i) as f64 * (p as f64 / n as f64) + 2.0 * (1 + d + 2) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn amortization_shrinks_with_n() {
        assert!(txs_bilateral(10) < txs_bilateral(2));
        assert!(cost_bilateral(10, 4) < cost_bilateral(2, 4));
    }

    #[test]
    fn unilateral_dominated_by_dmc_tail() {
        // For large n the unilateral cost tends to the DMC chain cost.
        let c = cost_unilateral(1000, 4, 1, 1);
        assert!((c - 2.0 * 4.0).abs() < 0.1);
    }

    #[test]
    fn trust_tradeoff_documented() {
        // SFMC beats Teechain's single tx only when many parties share
        // channels AND all collaborate (see §7.5 discussion).
        let sfmc = txs_bilateral(4);
        assert!(sfmc < 1.0);
    }
}
