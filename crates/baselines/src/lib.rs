#![warn(missing_docs)]

//! Baselines from the Teechain evaluation (§7).
//!
//! * [`ln`] — a protocol-level model of the Lightning Network: on-chain
//!   funding with 6-confirmation waits, revocable commitments, justice
//!   transactions bounded by the synchrony window τ, 2-RTT sequential
//!   payments. Calibrated to the paper's measured lnd numbers.
//! * [`dmc`] — Duplex Micropayment Channels blockchain-cost model
//!   (Table 4).
//! * [`sfmc`] — Scalable Funding of Micropayment Channels cost model
//!   (Table 4).
//! * [`attack`] — the transaction-delay attack that breaks
//!   synchronous-access payment networks (§1, §2.2), demonstrated against
//!   the LN model on the simulated chain; Teechain is immune by design.

pub mod attack;
pub mod dmc;
pub mod ln;
pub mod sfmc;
