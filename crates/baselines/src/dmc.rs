//! Duplex Micropayment Channels (Decker & Wattenhofer, SSS 2015):
//! blockchain-cost model from Table 4.
//!
//! DMC builds an invalidation tree of depth `d`; closing bilaterally needs
//! 2 transactions, unilaterally `1 + d + 2`. Each DMC transaction carries
//! 2 public keys and 2 signatures (cost 2).

/// Number of on-chain transactions for a bilateral close.
pub fn txs_bilateral() -> f64 {
    2.0
}

/// Number of on-chain transactions for a unilateral close with
/// invalidation-tree depth `d >= 1`.
pub fn txs_unilateral(d: u64) -> f64 {
    (1 + d + 2) as f64
}

/// Blockchain cost (pubkey+signature pairs) bilateral.
pub fn cost_bilateral() -> f64 {
    2.0 * txs_bilateral()
}

/// Blockchain cost unilateral.
pub fn cost_unilateral(d: u64) -> f64 {
    2.0 * txs_unilateral(d)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table4_values() {
        assert_eq!(txs_bilateral(), 2.0);
        assert_eq!(cost_bilateral(), 4.0);
        // d = 1: 4 transactions, cost 8.
        assert_eq!(txs_unilateral(1), 4.0);
        assert_eq!(cost_unilateral(1), 8.0);
    }

    #[test]
    fn unilateral_grows_with_depth() {
        assert!(txs_unilateral(5) > txs_unilateral(1));
    }
}
