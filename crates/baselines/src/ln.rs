//! A protocol-level Lightning Network channel model.
//!
//! Faithful to the properties the paper's evaluation compares against:
//!
//! * **Funding**: an on-chain 2-of-2 multisig output; the channel opens
//!   after 6 confirmations (≈ 60 minutes of Bitcoin time — Table 2's
//!   3.6×10⁶ ms channel creation).
//! * **Commitments**: each state update produces a new commitment
//!   transaction per side whose `to_self` output is revocable: spendable
//!   by the owner after τ blocks, or by the counterparty's revocation key
//!   immediately. Publishing a *stale* commitment is punishable within τ
//!   blocks by a justice transaction — **if** the victim can write to the
//!   blockchain in time, which is precisely the synchrony assumption
//!   Teechain eliminates.
//! * **Performance**: payments take two round trips
//!   (`update_add_htlc`+`commitment_signed` / `revoke_and_ack`) and are
//!   not pipelined; lnd measures 1,000 tx/s and 387 ms in the paper.

use teechain_blockchain::{Chain, OutPoint, ScriptPubKey, SubmitError, Transaction, TxIn, TxOut};
use teechain_crypto::schnorr::Keypair;

/// Performance constants measured for lnd in the paper (Table 1, Fig. 4).
pub mod perf {
    /// Maximum single-channel throughput (tx/s).
    pub const MAX_TX_PER_SEC: f64 = 1_000.0;
    /// Round trips per payment (Teechain needs 1; §7.2).
    pub const RTT_PER_PAYMENT: f64 = 2.0;
    /// Per-payment processing latency beyond the network (ms): lnd's
    /// measured 387 ms on an ≈86 ms-RTT path implies ≈215 ms of
    /// commitment/HTLC processing per payment.
    pub const PROCESSING_MS: f64 = 215.0;
    /// Blocks to confirm a funding transaction.
    pub const FUNDING_CONFIRMATIONS: u64 = 6;
    /// Seconds per Bitcoin block.
    pub const BLOCK_INTERVAL_SEC: f64 = 600.0;

    /// Channel creation latency in milliseconds (Table 2's 3.6×10⁶ ms).
    pub fn channel_creation_ms() -> f64 {
        FUNDING_CONFIRMATIONS as f64 * BLOCK_INTERVAL_SEC * 1000.0
    }

    /// Single-payment latency over a path RTT (ms), per hop structure:
    /// LN needs 1.5 RTT per hop plus processing (§7.3 discussion).
    pub fn payment_latency_ms(rtt_ms: f64) -> f64 {
        RTT_PER_PAYMENT * rtt_ms + PROCESSING_MS
    }
}

/// One side's view of an LN channel state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LnState {
    /// State number (monotonically increasing).
    pub num: u64,
    /// Balance of party A.
    pub bal_a: u64,
    /// Balance of party B.
    pub bal_b: u64,
}

/// A Lightning-style payment channel between parties A and B.
pub struct LnChannel {
    /// Funding keys.
    pub key_a: Keypair,
    /// Funding keys.
    pub key_b: Keypair,
    /// Per-party revocation keys (shared with the counterparty when a
    /// state is revoked; modelled as static here).
    pub rev_a: Keypair,
    /// Revocation key B holds over A's commitments.
    pub rev_b: Keypair,
    /// The on-chain funding output.
    pub funding: OutPoint,
    /// Current state.
    pub state: LnState,
    /// The synchrony window τ in blocks: stale commitments can be punished
    /// for this long after publication.
    pub tau_blocks: u64,
    /// All past (now revoked) states — a cheater can try to publish any.
    pub revoked: Vec<LnState>,
}

impl LnChannel {
    /// Opens a channel funded by A with `value`; mines until the funding
    /// has the required 6 confirmations. Returns the channel.
    pub fn open(chain: &mut Chain, seed: u8, value: u64, tau_blocks: u64) -> LnChannel {
        let key_a = Keypair::from_seed(&[seed; 32]);
        let key_b = Keypair::from_seed(&[seed ^ 0xff; 32]);
        let rev_a = Keypair::from_seed(&[seed ^ 0xa5; 32]);
        let rev_b = Keypair::from_seed(&[seed ^ 0x5a; 32]);
        let funding = chain.mint(ScriptPubKey::multisig(2, vec![key_a.pk, key_b.pk]), value);
        chain.mine_blocks(perf::FUNDING_CONFIRMATIONS - 1);
        LnChannel {
            key_a,
            key_b,
            rev_a,
            rev_b,
            funding,
            state: LnState {
                num: 0,
                bal_a: value,
                bal_b: 0,
            },
            tau_blocks,
            revoked: Vec::new(),
        }
    }

    /// Executes an off-chain payment from A to B (or B to A for negative
    /// reasoning, use `pay_b_to_a`). The previous state becomes revoked.
    pub fn pay_a_to_b(&mut self, amount: u64) -> Result<(), &'static str> {
        if self.state.bal_a < amount {
            return Err("insufficient balance");
        }
        self.revoked.push(self.state);
        self.state = LnState {
            num: self.state.num + 1,
            bal_a: self.state.bal_a - amount,
            bal_b: self.state.bal_b + amount,
        };
        Ok(())
    }

    /// B pays A.
    pub fn pay_b_to_a(&mut self, amount: u64) -> Result<(), &'static str> {
        if self.state.bal_b < amount {
            return Err("insufficient balance");
        }
        self.revoked.push(self.state);
        self.state = LnState {
            num: self.state.num + 1,
            bal_a: self.state.bal_a + amount,
            bal_b: self.state.bal_b - amount,
        };
        Ok(())
    }

    /// Builds A's commitment transaction for `state`: A's share goes to a
    /// revocable output (delayed for A, immediately claimable with B's
    /// revocation key if the state is stale); B's share pays out directly.
    pub fn commitment_for_a(&self, state: &LnState) -> Transaction {
        let mut outputs = Vec::new();
        if state.bal_a > 0 {
            outputs.push(TxOut {
                value: state.bal_a,
                script: ScriptPubKey::Revocable {
                    owner: self.key_a.pk,
                    delay_blocks: self.tau_blocks,
                    revocation: self.rev_b.pk,
                },
            });
        }
        if state.bal_b > 0 {
            outputs.push(TxOut {
                value: state.bal_b,
                script: ScriptPubKey::P2pk(self.key_b.pk),
            });
        }
        let mut tx = Transaction {
            inputs: vec![TxIn::spend(self.funding)],
            outputs,
        };
        // 2-of-2: both signatures (exchanged during commitment signing).
        tx.sign_input(0, &self.key_a.sk);
        tx.sign_input(0, &self.key_b.sk);
        tx
    }

    /// A (the cheater) broadcasts a **stale** commitment.
    pub fn cheat_broadcast(
        &self,
        chain: &mut Chain,
        stale: &LnState,
    ) -> Result<Transaction, SubmitError> {
        let tx = self.commitment_for_a(stale);
        chain.submit(tx.clone())?;
        Ok(tx)
    }

    /// B's justice transaction: claims A's revocable output of a published
    /// stale commitment using the revocation key. Must confirm within τ
    /// blocks of the commitment or the cheater sweeps first.
    pub fn justice_tx(&self, commitment: &Transaction) -> Transaction {
        let vout = commitment
            .outputs
            .iter()
            .position(|o| matches!(o.script, ScriptPubKey::Revocable { .. }))
            .expect("stale commitment has a revocable output") as u32;
        let value = commitment.outputs[vout as usize].value;
        let mut tx = Transaction {
            inputs: vec![TxIn::spend(OutPoint {
                txid: commitment.txid(),
                vout,
            })],
            outputs: vec![TxOut {
                value,
                script: ScriptPubKey::P2pk(self.key_b.pk),
            }],
        };
        tx.sign_input(0, &self.rev_b.sk);
        tx
    }

    /// The cheater's sweep of their own revocable output after τ blocks.
    pub fn cheater_sweep(&self, commitment: &Transaction) -> Transaction {
        let vout = commitment
            .outputs
            .iter()
            .position(|o| matches!(o.script, ScriptPubKey::Revocable { .. }))
            .expect("commitment has a revocable output") as u32;
        let value = commitment.outputs[vout as usize].value;
        let mut tx = Transaction {
            inputs: vec![TxIn::spend(OutPoint {
                txid: commitment.txid(),
                vout,
            })],
            outputs: vec![TxOut {
                value,
                script: ScriptPubKey::P2pk(self.key_a.pk),
            }],
        };
        tx.sign_input(0, &self.key_a.sk);
        tx
    }

    /// Cooperative close at the current state.
    pub fn close(&self, chain: &mut Chain) -> Result<(), SubmitError> {
        let mut outputs = Vec::new();
        if self.state.bal_a > 0 {
            outputs.push(TxOut {
                value: self.state.bal_a,
                script: ScriptPubKey::P2pk(self.key_a.pk),
            });
        }
        if self.state.bal_b > 0 {
            outputs.push(TxOut {
                value: self.state.bal_b,
                script: ScriptPubKey::P2pk(self.key_b.pk),
            });
        }
        let mut tx = Transaction {
            inputs: vec![TxIn::spend(self.funding)],
            outputs,
        };
        tx.sign_input(0, &self.key_a.sk);
        tx.sign_input(0, &self.key_b.sk);
        chain.submit(tx)?;
        chain.mine_blocks(1);
        Ok(())
    }
}

/// LN blockchain-cost constants (Table 4): 4 transactions, cost 6, for
/// both bilateral and unilateral termination.
pub mod cost {
    /// Transactions placed on chain per channel.
    pub const TXS: f64 = 4.0;
    /// Public-key/signature pairs per channel.
    pub const COST: f64 = 6.0;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn open_waits_six_confirmations() {
        let mut chain = Chain::new();
        let ch = LnChannel::open(&mut chain, 1, 1000, 144);
        assert!(chain.utxo_confirmations(&ch.funding).unwrap() >= 6);
    }

    #[test]
    fn payments_update_state_and_revoke() {
        let mut chain = Chain::new();
        let mut ch = LnChannel::open(&mut chain, 1, 1000, 144);
        ch.pay_a_to_b(300).unwrap();
        ch.pay_b_to_a(100).unwrap();
        assert_eq!(ch.state.bal_a, 800);
        assert_eq!(ch.state.bal_b, 200);
        assert_eq!(ch.revoked.len(), 2);
        assert!(ch.pay_b_to_a(300).is_err());
    }

    #[test]
    fn cooperative_close_pays_both() {
        let mut chain = Chain::new();
        let mut ch = LnChannel::open(&mut chain, 1, 1000, 144);
        ch.pay_a_to_b(250).unwrap();
        ch.close(&mut chain).unwrap();
        assert_eq!(chain.balance_p2pk(&ch.key_a.pk), 750);
        assert_eq!(chain.balance_p2pk(&ch.key_b.pk), 250);
    }

    #[test]
    fn justice_punishes_prompt_victim() {
        let mut chain = Chain::new();
        let mut ch = LnChannel::open(&mut chain, 1, 1000, 10);
        ch.pay_a_to_b(600).unwrap(); // Honest: A=400, B=600.
        let stale = ch.revoked[0]; // A=1000, B=0.
        let commitment = ch.cheat_broadcast(&mut chain, &stale).unwrap();
        chain.mine_blocks(1);
        // B reacts within τ: justice claims the full revocable output.
        chain.submit(ch.justice_tx(&commitment)).unwrap();
        chain.mine_blocks(1);
        assert_eq!(chain.balance_p2pk(&ch.key_b.pk), 1000);
        assert_eq!(chain.balance_p2pk(&ch.key_a.pk), 0);
    }

    #[test]
    fn cheater_sweep_blocked_before_tau() {
        let mut chain = Chain::new();
        let mut ch = LnChannel::open(&mut chain, 1, 1000, 10);
        ch.pay_a_to_b(600).unwrap();
        let stale = ch.revoked[0];
        let commitment = ch.cheat_broadcast(&mut chain, &stale).unwrap();
        chain.mine_blocks(1);
        // Sweeping immediately violates the timelock.
        let sweep = ch.cheater_sweep(&commitment);
        assert!(chain.submit(sweep.clone()).is_err());
        // After τ blocks it becomes valid.
        chain.mine_blocks(10);
        chain.submit(sweep).unwrap();
        chain.mine_blocks(1);
        assert_eq!(chain.balance_p2pk(&ch.key_a.pk), 1000);
    }

    #[test]
    fn perf_constants_match_paper() {
        assert_eq!(perf::channel_creation_ms(), 3_600_000.0);
        // 2-hop LN payment on ~0.4 s/hop => about a second (Fig. 4).
        let lat = 2.0 * perf::payment_latency_ms(86.0);
        assert!((700.0..1200.0).contains(&lat));
    }
}
