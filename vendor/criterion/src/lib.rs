//! A small, offline subset of the `criterion` crate, vendored because this
//! workspace builds without network access to crates.io.
//!
//! Provides the macro/builder surface the workspace's benches use —
//! [`criterion_group!`], [`criterion_main!`], benchmark groups,
//! [`Bencher::iter`] — backed by a plain wall-clock measurement loop
//! (median of `sample_size` samples, auto-scaled iteration counts) instead
//! of criterion's statistical machinery.

use std::time::{Duration, Instant};

/// Target measurement time per benchmark sample.
const SAMPLE_TARGET: Duration = Duration::from_millis(20);

/// Measures closures handed to [`Bencher::iter`].
pub struct Bencher {
    samples: usize,
    /// Median nanoseconds per iteration, filled by `iter`.
    result_ns: f64,
}

impl Bencher {
    /// Times `f`, auto-scaling the iteration count per sample.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        // Calibrate: how many iterations fit in the per-sample budget?
        let mut iters = 1u64;
        loop {
            let start = Instant::now();
            for _ in 0..iters {
                std::hint::black_box(f());
            }
            let elapsed = start.elapsed();
            if elapsed >= SAMPLE_TARGET / 4 || iters >= 1 << 24 {
                break;
            }
            iters *= 8;
        }
        let mut per_iter: Vec<f64> = (0..self.samples)
            .map(|_| {
                let start = Instant::now();
                for _ in 0..iters {
                    std::hint::black_box(f());
                }
                start.elapsed().as_nanos() as f64 / iters as f64
            })
            .collect();
        per_iter.sort_by(|a, b| a.total_cmp(b));
        self.result_ns = per_iter[per_iter.len() / 2];
    }
}

/// Identifies one parameterized benchmark within a group.
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// An id rendered from a parameter value.
    pub fn from_parameter<P: std::fmt::Display>(p: P) -> Self {
        BenchmarkId(p.to_string())
    }

    /// An id with a function name and a parameter.
    pub fn new<P: std::fmt::Display>(name: &str, p: P) -> Self {
        BenchmarkId(format!("{name}/{p}"))
    }
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Overrides the number of samples for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(3);
        self
    }

    fn run(&mut self, id: &str, f: impl FnOnce(&mut Bencher)) {
        let mut b = Bencher {
            samples: self.sample_size,
            result_ns: 0.0,
        };
        f(&mut b);
        let full = format!("{}/{}", self.name, id);
        println!("bench {:<40} {:>14} ns/iter", full, fmt_ns(b.result_ns));
        self.criterion.benchmarks_run += 1;
        self.criterion.results.push((full, b.result_ns));
    }

    /// Benchmarks `f` under `id`.
    pub fn bench_function(&mut self, id: &str, f: impl FnOnce(&mut Bencher)) -> &mut Self {
        self.run(id, f);
        self
    }

    /// Benchmarks `f` with an input value.
    pub fn bench_with_input<I>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        f: impl FnOnce(&mut Bencher, &I),
    ) -> &mut Self {
        self.run(&id.0, |b| f(b, input));
        self
    }

    /// Ends the group (a no-op; kept for API compatibility).
    pub fn finish(&mut self) {}
}

/// The benchmark harness entry point.
#[derive(Default)]
pub struct Criterion {
    sample_size: usize,
    benchmarks_run: usize,
    results: Vec<(String, f64)>,
}

impl Criterion {
    /// Sets the default number of samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(3);
        self
    }

    /// Opens a benchmark group.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        let sample_size = if self.sample_size == 0 {
            10
        } else {
            self.sample_size
        };
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
            sample_size,
        }
    }

    /// Benchmarks `f` outside any group.
    pub fn bench_function(&mut self, id: &str, f: impl FnOnce(&mut Bencher)) -> &mut Self {
        self.benchmark_group("top").bench_function(id, f);
        self
    }

    /// Measured `(benchmark id, median ns/iter)` pairs, in run order —
    /// lets custom bench mains persist results (e.g. to JSON artifacts).
    /// Not part of upstream criterion's API.
    pub fn results(&self) -> &[(String, f64)] {
        &self.results
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e6 {
        format!("{:.1}m", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.1}k", ns / 1e3)
    } else {
        format!("{ns:.1}")
    }
}

/// Declares a benchmark group function, criterion-style.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the benchmark binary's `main`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut c = Criterion::default().sample_size(3);
        let mut g = c.benchmark_group("t");
        let mut ran = false;
        g.bench_function("noop", |b| {
            b.iter(|| 1 + 1);
            ran = true;
        });
        assert!(ran);
    }

    #[test]
    fn ids_render() {
        assert_eq!(BenchmarkId::from_parameter(3).0, "3");
        assert_eq!(BenchmarkId::new("f", 3).0, "f/3");
    }
}
