//! A tiny, API-compatible subset of the `parking_lot` crate backed by
//! `std::sync`, vendored because this workspace builds without network
//! access to crates.io.
//!
//! Differences from the real crate are deliberate simplifications:
//! poisoning is swallowed (a panicked holder does not poison the lock for
//! everyone else, matching parking_lot semantics), and only the pieces the
//! workspace uses are provided: [`Mutex`], [`RwLock`] and their guards.

use std::fmt;
use std::sync::{MutexGuard as StdMutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A mutual exclusion primitive with the `parking_lot` API: `lock()`
/// returns the guard directly (no `Result`, no poisoning).
#[derive(Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

/// RAII guard for [`Mutex::lock`].
pub struct MutexGuard<'a, T: ?Sized>(StdMutexGuard<'a, T>);

impl<T> Mutex<T> {
    /// Creates a new mutex protecting `value`.
    pub const fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard(self.0.lock().unwrap_or_else(|e| e.into_inner()))
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(MutexGuard(g)),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(MutexGuard(e.into_inner())),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

impl<T: fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_tuple("Mutex").finish()
    }
}

/// A reader-writer lock with the `parking_lot` API.
#[derive(Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Creates a new lock protecting `value`.
    pub const fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read lock.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquires an exclusive write lock.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn lock_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
    }

    #[test]
    fn shared_across_threads() {
        let m = Arc::new(Mutex::new(0u64));
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let m = m.clone();
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        *m.lock() += 1;
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*m.lock(), 4000);
    }

    #[test]
    fn panicked_holder_does_not_poison() {
        let m = Arc::new(Mutex::new(7));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("holder dies");
        })
        .join();
        assert_eq!(*m.lock(), 7, "lock usable after a panicked holder");
    }

    #[test]
    fn rwlock_readers_and_writer() {
        let l = RwLock::new(5);
        {
            let a = l.read();
            let b = l.read();
            assert_eq!((*a, *b), (5, 5));
        }
        *l.write() = 6;
        assert_eq!(*l.read(), 6);
    }
}
