//! A small, offline subset of the `proptest` crate, vendored because this
//! workspace builds without network access to crates.io.
//!
//! Supported surface (exactly what the workspace's tests use):
//!
//! * [`proptest!`] blocks with an optional `#![proptest_config(..)]` line;
//! * [`any`] for unsigned integers, `bool` and fixed-size arrays;
//! * integer `Range` strategies (`1u64..100`);
//! * `&str` regex strategies of the simple `".{a,b}"` shape;
//! * [`collection::vec`], [`Strategy::prop_map`], [`prop_oneof!`];
//! * [`prop_assert!`], [`prop_assert_eq!`], [`prop_assume!`].
//!
//! Unlike real proptest there is no shrinking: a failing case panics with
//! the generated inputs' debug representation so it can be reproduced by
//! eye, and runs are fully deterministic per test name.

use std::fmt::Debug;

/// Deterministic generator state (SplitMix64).
pub struct TestRng(u64);

impl TestRng {
    /// Seeds a generator.
    pub fn new(seed: u64) -> Self {
        TestRng(seed ^ 0x9E37_79B9_7F4A_7C15)
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[lo, hi)`; `lo < hi` required.
    pub fn below(&mut self, lo: u64, hi: u64) -> u64 {
        lo + self.next_u64() % (hi - lo)
    }
}

/// Why a test case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// `prop_assume!` rejected the inputs; the case is skipped.
    Reject,
    /// An assertion failed with this message.
    Fail(String),
}

/// A value generator.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<T, F: Fn(Self::Value) -> T>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

impl<T> Strategy for Box<dyn Strategy<Value = T>> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (**self).generate(rng)
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T, F: Fn(S::Value) -> T> Strategy for Map<S, F> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (self.f)(self.inner.generate(rng))
    }
}

/// Chooses uniformly among boxed alternatives (see [`prop_oneof!`]).
pub struct Union<T>(pub Vec<Box<dyn Strategy<Value = T>>>);

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let idx = rng.below(0, self.0.len() as u64) as usize;
        self.0[idx].generate(rng)
    }
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Generates an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_uint {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_uint!(u8, u16, u32, u64, usize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl<T: Arbitrary + Copy + Default, const N: usize> Arbitrary for [T; N] {
    fn arbitrary(rng: &mut TestRng) -> [T; N] {
        let mut out = [T::default(); N];
        for slot in &mut out {
            *slot = T::arbitrary(rng);
        }
        out
    }
}

/// Strategy yielding any value of `T`.
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The `any::<T>()` strategy constructor.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                rng.below(self.start as u64, self.end as u64) as $t
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize);

/// `&str` regex strategies: only the `".{a,b}"` shape is supported —
/// a string of `a..=b` arbitrary characters.
impl Strategy for &str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        let (lo, hi) = parse_len_bounds(self).unwrap_or((0, 32));
        let len = if hi > lo {
            rng.below(lo as u64, hi as u64 + 1) as usize
        } else {
            lo
        };
        // A spread of ASCII plus multi-byte code points to exercise UTF-8
        // handling in whatever consumes the string.
        const ALPHABET: &[char] = &[
            'a', 'b', 'z', 'A', 'Z', '0', '9', ' ', '.', ',', '!', '/', '\\', '"', '\'', '\n',
            '\t', '\0', 'é', 'π', '中', '🦀',
        ];
        (0..len)
            .map(|_| ALPHABET[rng.below(0, ALPHABET.len() as u64) as usize])
            .collect()
    }
}

fn parse_len_bounds(pattern: &str) -> Option<(usize, usize)> {
    let body = pattern.strip_prefix(".{")?.strip_suffix('}')?;
    let (lo, hi) = body.split_once(',')?;
    Some((lo.trim().parse().ok()?, hi.trim().parse().ok()?))
}

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};

    /// Element-count bounds for [`vec()`].
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            SizeRange {
                lo: r.start,
                hi: r.end.saturating_sub(1),
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    /// See [`vec()`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// A `Vec` of values from `element`, with length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = if self.size.hi > self.size.lo {
                rng.below(self.size.lo as u64, self.size.hi as u64 + 1) as usize
            } else {
                self.size.lo
            };
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Per-`proptest!`-block configuration.
#[derive(Clone, Copy)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// FNV-1a, used to derive a per-test deterministic seed from its name.
pub fn seed_from_name(name: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in name.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// Runs one named property with `config.cases` generated cases.
/// `case` receives a fresh [`TestRng`] per case and returns `Err` to fail
/// or reject. Used by the [`proptest!`] macro expansion.
pub fn run_property<F>(name: &str, config: ProptestConfig, mut case: F)
where
    F: FnMut(&mut TestRng) -> (Result<(), TestCaseError>, String),
{
    let base = seed_from_name(name);
    for i in 0..config.cases as u64 {
        let mut rng = TestRng::new(base.wrapping_add(i.wrapping_mul(0xA076_1D64_78BD_642F)));
        let (result, inputs) = case(&mut rng);
        match result {
            Ok(()) | Err(TestCaseError::Reject) => {}
            Err(TestCaseError::Fail(msg)) => {
                panic!("property '{name}' failed at case {i}: {msg}\ninputs: {inputs}")
            }
        }
    }
}

/// Formats generated inputs for failure messages.
pub fn fmt_inputs(pairs: &[(&str, &dyn Debug)]) -> String {
    pairs
        .iter()
        .map(|(n, v)| format!("{n} = {v:?}"))
        .collect::<Vec<_>>()
        .join(", ")
}

/// Defines property tests. See the crate docs for the supported shape.
#[macro_export]
macro_rules! proptest {
    (@cfg ($config:expr) ) => {};
    (
        @cfg ($config:expr)
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            $crate::run_property(stringify!($name), $config, |rng| {
                $(let $arg = $crate::Strategy::generate(&($strat), rng);)+
                let inputs = $crate::fmt_inputs(&[$((stringify!($arg), &$arg as &dyn ::std::fmt::Debug)),+]);
                let result = (|| -> ::std::result::Result<(), $crate::TestCaseError> {
                    $body
                    ::std::result::Result::Ok(())
                })();
                (result, inputs)
            });
        }
        $crate::proptest!(@cfg ($config) $($rest)*);
    };
    (
        #![proptest_config($config:expr)]
        $($rest:tt)*
    ) => {
        $crate::proptest!(@cfg ($config) $($rest)*);
    };
    ( $($rest:tt)* ) => {
        $crate::proptest!(@cfg ($crate::ProptestConfig::default()) $($rest)*);
    };
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(
                concat!("assertion failed: ", stringify!($cond)).to_string(),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!($($fmt)*)));
        }
    };
}

/// Fails the current case unless the operands are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        match (&$left, &$right) {
            (l, r) => {
                if !(*l == *r) {
                    return ::std::result::Result::Err($crate::TestCaseError::Fail(format!(
                        "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
                        stringify!($left),
                        stringify!($right),
                        l,
                        r
                    )));
                }
            }
        }
    }};
}

/// Skips the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::Reject);
        }
    };
}

/// Chooses uniformly among the listed strategies (all must yield the same
/// value type).
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::Union(vec![$(::std::boxed::Box::new($strategy)
            as ::std::boxed::Box<dyn $crate::Strategy<Value = _>>),+])
    };
}

/// The usual `use proptest::prelude::*` imports.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assume, prop_oneof, proptest, ProptestConfig,
        Strategy,
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn deterministic_per_name() {
        let mut a = crate::TestRng::new(crate::seed_from_name("x"));
        let mut b = crate::TestRng::new(crate::seed_from_name("x"));
        assert_eq!(a.next_u64(), b.next_u64());
    }

    #[test]
    #[should_panic(expected = "property 'always_fails' failed")]
    fn failures_panic_with_inputs() {
        crate::run_property("always_fails", ProptestConfig::with_cases(1), |_rng| {
            (
                Err(crate::TestCaseError::Fail("nope".into())),
                String::new(),
            )
        });
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn ranges_respect_bounds(x in 10u64..20, y in 1u8..3) {
            prop_assert!((10u64..20).contains(&x));
            prop_assert!((1u8..3).contains(&y));
        }

        #[test]
        fn vec_lengths_respect_bounds(v in crate::collection::vec(any::<u8>(), 2..5)) {
            prop_assert!((2..5).contains(&v.len()), "len {}", v.len());
        }

        #[test]
        fn oneof_and_map_compose(v in prop_oneof![
            (1u64..10).prop_map(|x| x * 2),
            (100u64..200).prop_map(|x| x),
        ]) {
            prop_assert!(v < 200u64);
            prop_assume!(v != 3u64); // Odd small values can't occur anyway.
        }

        #[test]
        fn string_pattern_lengths(s in ".{0,8}") {
            prop_assert!(s.chars().count() <= 8);
        }
    }
}
