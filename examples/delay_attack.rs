//! The motivating attack (§1, §2.2): blockchains only offer best-effort
//! write latency, so any protocol that needs a transaction confirmed
//! "within τ" can be robbed. The Lightning baseline falls; Teechain, which
//! never needs timely writes, does not care.
//!
//! Run with: `cargo run --example delay_attack`

use teechain::testkit::Cluster;
use teechain_baselines::attack::delay_attack_on_ln;
use teechain_blockchain::AdversaryPolicy;

fn main() {
    println!("=== Lightning Network under a transaction-delay attack ===\n");
    let tau = 10; // Reaction window in blocks.
    for censor in [5, 10, 11, 20] {
        let out = delay_attack_on_ln(1_000, 600, tau, censor);
        println!(
            "censor {censor:>2} blocks (tau = {tau}): cheater={:>4} victim={:>4}  theft={}",
            out.cheater_balance, out.victim_balance, out.theft_succeeded
        );
    }
    println!("\n→ once the adversary delays the justice transaction past τ, the\n  cheater rolls back the channel and keeps the victim's 600.\n");

    println!("=== The same adversary against Teechain ===\n");
    let mut net = Cluster::functional(2);
    let chan = net.standard_channel(0, 1, "a-b", 1_000, 1);
    net.pay(0, chan, 600).unwrap();
    // The adversary delays EVERY transaction by 50 blocks. Teechain does
    // not monitor the chain and has no reaction window: the settlement
    // simply confirms whenever it confirms.
    net.chain
        .lock()
        .set_policy(AdversaryPolicy::DelayAll { blocks: 50 });
    let bob_addr = {
        let p = net.node(1).enclave.program().unwrap();
        p.channel(&chan).unwrap().my_settlement
    };
    net.settle_channel(1, chan).unwrap();
    net.mine(49);
    println!(
        "after 49 censored blocks Bob has {} on chain (settlement delayed, not defeated)",
        net.chain_balance(&bob_addr)
    );
    net.mine(2);
    println!(
        "after the delay expires Bob has {} — the full amount he was owed",
        net.chain_balance(&bob_addr)
    );
    assert_eq!(net.chain_balance(&bob_addr), 600);
    println!("\n→ Teechain loses liveness during censorship, never safety:\n  there is no stale state an attacker could confirm instead.");
}
