//! Quickstart: two parties open a Teechain channel, pay each other, and
//! settle — all with *asynchronous* blockchain access, driven through
//! the typed operation API: every call is a correlated operation whose
//! completion carries a typed result (or a typed error — nothing is
//! fire-and-forget).
//!
//! Run with: `cargo run --example quickstart`

use teechain::ops::SettleKind;
use teechain::testkit::Cluster;

fn main() {
    // Two nodes, each with an attested TEE, sharing a simulated Bitcoin-
    // like blockchain. Identities are exchanged out-of-band.
    let mut net = Cluster::functional(2);
    println!("Alice  = {}", net.ids[0].fingerprint());
    println!("Bob    = {}", net.ids[1].fingerprint());

    // 1. Secure channel: mutual remote attestation + authenticated DH.
    //    `handle(i)` submits a correlated operation; `wait` resolves its
    //    typed completion.
    let session = net.handle(0).connect(1);
    let bob = net.wait(session).expect("attestation");
    println!(
        "\n[1] attested session established with {}",
        bob.fingerprint()
    );

    // 2. Payment channel: created instantly — no blockchain write.
    let open = net.handle(0).open_channel(1, "alice-bob");
    let chan = net.wait(open).expect("channel open");
    println!(
        "[2] payment channel open ({}) — zero on-chain writes",
        chan.short()
    );

    // 3. Fund deposit: Alice mints 1,000 on chain into a TEE-controlled
    //    address, Bob's host verifies it on chain and his TEE approves,
    //    then the deposit is associated with the channel dynamically.
    let fund = net.handle(0).fund_deposit(1_000, 1);
    let deposit = net.wait(fund).expect("funding");
    net.approve_and_associate(0, 1, chan, &deposit);
    println!(
        "[3] deposit {} (1,000) approved and associated",
        deposit.outpoint.txid.short()
    );

    // 4. Payments: single message + ack; the completion IS the ack, with
    //    per-operation latency stamped on it.
    for amount in [250, 100, 50] {
        let receipt = net.pay(0, chan, amount).expect("payment");
        assert_eq!(receipt.amount, amount);
    }
    net.pay(1, chan, 150).expect("payment back"); // Bob pays some back.
    let (alice, bob_bal) = net.balances(0, chan);
    println!("[4] after payments: Alice={alice} Bob={bob_bal}");
    assert_eq!((alice, bob_bal), (750, 250));

    // 5. Settlement: one transaction carrying the final balances. The
    //    blockchain is only now involved — and only eventually. The
    //    typed completion says HOW the channel terminated.
    let alice_addr = {
        let p = net.node(0).enclave.program().unwrap();
        p.channel(&chan).unwrap().my_settlement
    };
    let s = net.settle_channel(0, chan).expect("settle");
    assert!(matches!(s.kind, SettleKind::OnChain(_)));
    net.mine(1);
    println!(
        "[5] settled on chain: Alice's settlement address holds {}",
        net.chain_balance(&alice_addr)
    );
    assert_eq!(net.chain_balance(&alice_addr), 750);
    println!("\nDone: 4 payments, 2 on-chain transactions total (funding + settlement).");
}
