//! Quickstart: two parties open a Teechain channel, pay each other, and
//! settle — all with *asynchronous* blockchain access.
//!
//! Run with: `cargo run --example quickstart`

use teechain::enclave::Command;
use teechain::testkit::Cluster;

fn main() {
    // Two nodes, each with an attested TEE, sharing a simulated Bitcoin-
    // like blockchain. Identities are exchanged out-of-band.
    let mut net = Cluster::functional(2);
    println!("Alice  = {}", net.ids[0].fingerprint());
    println!("Bob    = {}", net.ids[1].fingerprint());

    // 1. Secure channel: mutual remote attestation + authenticated DH.
    net.connect(0, 1);
    println!("\n[1] attested session established");

    // 2. Payment channel: created instantly — no blockchain write.
    let chan = net.open_channel(0, 1, "alice-bob");
    println!(
        "[2] payment channel open ({}) — zero on-chain writes",
        chan.short()
    );

    // 3. Fund deposit: Alice mints 1,000 on chain into a TEE-controlled
    //    address, Bob's host verifies it on chain and his TEE approves,
    //    then the deposit is associated with the channel dynamically.
    let deposit = net.fund_deposit(0, 1_000, 1);
    net.approve_and_associate(0, 1, chan, &deposit);
    println!(
        "[3] deposit {} (1,000) approved and associated",
        deposit.outpoint.txid.short()
    );

    // 4. Payments: single message + ack, no consensus in the loop.
    for amount in [250, 100, 50] {
        net.pay(0, chan, amount).unwrap();
    }
    net.pay(1, chan, 150).unwrap(); // Bob pays some back.
    let (alice, bob) = net.balances(0, chan);
    println!("[4] after payments: Alice={alice} Bob={bob}");
    assert_eq!((alice, bob), (750, 250));

    // 5. Settlement: one transaction carrying the final balances. The
    //    blockchain is only now involved — and only eventually.
    let alice_addr = {
        let p = net.node(0).enclave.program().unwrap();
        p.channel(&chan).unwrap().my_settlement
    };
    net.command(0, Command::Settle { id: chan }).unwrap();
    net.settle_network();
    net.mine(1);
    println!(
        "[5] settled on chain: Alice's settlement address holds {}",
        net.chain_balance(&alice_addr)
    );
    assert_eq!(net.chain_balance(&alice_addr), 750);
    println!("\nDone: 4 payments, 2 on-chain transactions total (funding + settlement).");
}
