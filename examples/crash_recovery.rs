//! Crash recovery with persistent storage (§6.2): kill a node
//! mid-payment, recover it from the sealed WAL + snapshot, and watch a
//! roll-back attack get refused by the monotonic counter.
//!
//! Run with: `cargo run --release --example crash_recovery`

use teechain::enclave::Command;
use teechain::ops::OpError;
use teechain::testkit::{Cluster, ClusterConfig};
use teechain::{DurabilityBackend, PersistPolicy, ProtocolError};

fn main() {
    // Two nodes in §6.2 persistent-storage mode: every commit seals its
    // state deltas into a host-side WAL; every 4th commit also seals a
    // full snapshot and compacts the log.
    let mut net = Cluster::new(ClusterConfig {
        n: 2,
        durability: DurabilityBackend::Persist(PersistPolicy { snapshot_every: 4 }),
        ..ClusterConfig::default()
    });
    let chan = net.standard_channel(0, 1, "demo", 10_000, 1);
    println!("channel open, Alice funded with 10,000");

    for i in 1..=5 {
        net.pay(0, chan, 100).unwrap();
        println!("payment {i}: Alice -> Bob 100");
    }
    let (bob, _) = net.balances(1, chan);
    let stats = net.store(1).unwrap().lock().stats();
    println!(
        "Bob holds {bob}; his store saw {} commits, {} snapshots, {} WAL bytes",
        stats.commits, stats.compactions, stats.wal_bytes
    );

    // A malicious host copies Bob's storage now — it will try to replay
    // this stale state later to erase payments.
    let (stale_snapshot, stale_log) = net.store(1).unwrap().lock().raw_dump().unwrap();

    net.pay(0, chan, 100).unwrap(); // Payment 6 commits durably.

    // Power failure: Bob dies with payment 7 on the wire. The payment
    // operation never resolves with an ack — it is typed-dead instead of
    // silently vanishing.
    let inflight = net.submit(
        0,
        Command::Pay {
            id: chan,
            amount: 100,
            count: 1,
        },
    );
    net.crash_node(1);
    let p7: Result<teechain::ops::Payment, _> = net.wait(net.pending(inflight));
    assert!(matches!(p7, Err(OpError::Timeout { .. })));
    println!("\nBob crashed mid-payment (payment 7 was in flight: {p7:?})");

    // Honest recovery: replay snapshot + WAL, counters check out. The
    // recovery operation's typed completion reports what was replayed.
    let recovered = net.recover_node(1).unwrap();
    println!(
        "recovered: {} channel(s), {} deposit(s), {} durable commits replayed",
        recovered.channels, recovered.deposits, recovered.commits
    );
    let (bob, _) = net.balances(1, chan);
    println!("Bob's balance after recovery: {bob} (payments 1-6 intact, 7 was never applied)");
    assert_eq!(bob, 600);

    // Sessions are volatile; Bob re-handshakes and payments resume.
    net.connect(1, 0);
    net.pay(0, chan, 100).unwrap();
    println!(
        "payments flow again: Bob now holds {}",
        net.balances(1, chan).0
    );

    // Roll-back attack: crash Bob again and restore the stale copy.
    net.crash_node(1);
    net.store(1)
        .unwrap()
        .lock()
        .restore_raw(stale_snapshot, stale_log)
        .unwrap();
    match net.recover_node(1) {
        Err(OpError::Rejected(ProtocolError::StaleState { found, expected })) => println!(
            "\nroll-back attack refused: storage reaches commit {found}, \
             hardware counter proves {expected} exist"
        ),
        other => panic!("stale state must be refused, got {other:?}"),
    }
    println!("the enclave froze itself; stale state can sign nothing");
}
