//! The paper's e-commerce motivation (§2.2): Alice buys from Carol via a
//! payment processor, without a direct channel — a multi-hop payment with
//! consistent termination guarantees.
//!
//! Run with: `cargo run --example multihop_commerce`

use teechain::enclave::Command;
use teechain::testkit::Cluster;
use teechain::RouteId;

fn main() {
    let mut net = Cluster::functional(3);
    let (alice, processor, carol) = (0, 1, 2);

    // Channels: Alice ↔ Processor ↔ Carol, each funded with 1,000.
    let c1 = net.standard_channel(alice, processor, "alice-pp", 1_000, 1);
    let c2 = net.standard_channel(processor, carol, "pp-carol", 1_000, 1);
    println!(
        "channels open: alice-pp ({}), pp-carol ({})",
        c1.short(),
        c2.short()
    );

    // A multi-hop purchase: 420 flows Alice → Processor → Carol, with all
    // channels updating atomically (lock → sign τ → preUpdate → update →
    // postUpdate → release).
    let delivered = net
        .pay_multihop(&[alice, processor, carol], &[c1, c2], 420, "order-1")
        .unwrap();
    assert_eq!(delivered.amount, 420);
    println!(
        "purchase complete: Alice {:?}, Carol {:?}",
        net.balances(alice, c1),
        net.balances(carol, c2)
    );
    assert_eq!(net.balances(carol, c2).0, 420);

    // Now the adversarial case: a second purchase starts, but Carol
    // prematurely terminates mid-protocol. Thanks to the intermediate
    // settlement transaction τ and proofs of premature termination, every
    // channel settles at a CONSISTENT state — nobody loses funds.
    let route = RouteId([7; 32]);
    let hops = vec![net.ids[alice], net.ids[processor], net.ids[carol]];
    // Submit without resolving: the purchase is deliberately frozen
    // mid-protocol (its completion will carry the failure).
    net.submit(
        alice,
        Command::PayMultihop {
            route,
            hops,
            channels: vec![c1, c2],
            amount: 100,
        },
    );
    // Run only lock+sign: everyone holds τ; balances not yet updated.
    net.sim.run_to_idle(4);
    println!("\nsecond purchase locked; Carol ejects prematurely...");
    net.op_now(carol, Command::Eject { route }).unwrap();
    net.mine(1);

    // Alice's host sees the conflicting settlement on chain and presents
    // it to her TEE as a proof of premature termination.
    let popt = {
        let p = net.node(carol).enclave.program().unwrap();
        let dep = p.channel(&c2).unwrap().all_deposits()[0];
        net.chain.lock().find_spender(&dep).unwrap().clone()
    };
    net.op_now(alice, Command::EjectWithPopt { route, popt })
        .unwrap();
    net.mine(1);
    let alice_addr = {
        let p = net.node(alice).enclave.program().unwrap();
        p.channel(&c1).unwrap().my_settlement
    };
    // Alice settled at pre-payment state of the SECOND purchase: she keeps
    // the 580 she had after the first one. The 100 was never lost.
    println!(
        "Alice settled consistently at pre-payment state: {} on chain",
        net.chain_balance(&alice_addr)
    );
    assert_eq!(net.chain_balance(&alice_addr), 580);
}
