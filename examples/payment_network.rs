//! A miniature §7.4 payment network: a hub-and-spoke overlay processing a
//! skewed workload with multi-hop routing and in-enclave admission
//! queues absorbing lock contention.
//!
//! Run with: `cargo run --release --example payment_network`

use teechain_bench::scenarios::{build_network, wan_100ms};
use teechain_bench::workload::Workload;
use teechain_net::topology::HubSpoke;

fn main() {
    // A small 10-node hub-and-spoke: 1 hub, 3 mid-tier, 6 leaves.
    let hs = HubSpoke {
        tier1: 1,
        tier2: 3,
        tier3: 6,
    };
    let edges = hs.channel_pairs();
    println!(
        "building {}-node hub-and-spoke with {} channels...",
        hs.total(),
        edges.len()
    );
    let mut net = build_network(hs.total() as usize, &edges, 1, 0, wan_100ms(), 21);

    // 300 payments drawn from the tiered address distribution.
    let mut wl = Workload::hub_spoke(&hs, 5);
    let mut assigned = 0;
    for p in wl.take(80) {
        let Some(path) = net.graph.shortest_path(p.from, p.to) else {
            continue;
        };
        if let Some(job) = net.multihop_job(&path, p.value.min(500), 0) {
            let from = p.from.0 as usize;
            net.cluster.load_one(from, job);
            assigned += 1;
        }
    }
    // Small windows keep lock contention sane on this tiny overlay.
    for i in 0..hs.total() as usize {
        net.cluster.set_window(i, 1);
    }
    println!("issuing {assigned} multi-hop payments (window 1 per node)...");
    let stats = net.cluster.run(500_000_000);
    println!(
        "completed {} payments in {:.2}s simulated: {:.1} tx/s, mean {:.0} ms, avg {:.1} hops, {} queued on locked channels, {} batches (max {})",
        stats.completed,
        stats.duration_ns as f64 / 1e9,
        stats.throughput,
        stats.mean_ms,
        stats.avg_hops + 1.0,
        stats.queued,
        stats.batches,
        stats.max_batch,
    );
    // Typed failure accounting: every non-completion is a counted
    // OpError, not an absent event.
    for (label, n) in net.cluster.op_errors() {
        println!("  op error {label}: {n}");
    }
    assert!(stats.completed > 0);
}
