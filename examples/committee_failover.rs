//! Fault tolerance (§6): committee chains survive a TEE crash, and
//! m-of-n thresholds defeat a *compromised* TEE trying to settle at a
//! stale state.
//!
//! Run with: `cargo run --example committee_failover`

use teechain::enclave::{Command, HostEvent};
use teechain::testkit::Cluster;

fn main() {
    // Alice (0) pays Bob (1); Alice's TEE is replicated to a committee
    // member (2) with a 2-of-2 deposit threshold.
    let mut net = Cluster::functional(3);
    net.attach_backup(0, 2);
    net.connect(0, 1);
    let chan = net.open_channel(0, 1, "alice-bob");
    let deposit = net.fund_deposit(0, 1_000, 2); // 2-of-2 committee.
    println!(
        "deposit committee: {}-of-{}",
        deposit.committee.m,
        deposit.committee.n()
    );
    net.approve_and_associate(0, 1, chan, &deposit);
    net.pay(0, chan, 400).unwrap();
    println!("honest state: {:?}", net.balances(0, chan));

    // --- Byzantine attempt -------------------------------------------
    // Alice's TEE is compromised (think Foreshadow): the attacker
    // extracts the channel and forges a settlement at the PRE-payment
    // state, trying to claw back the 400 already paid to Bob.
    let forged = {
        let (program, _) = net.node_mut(0).enclave.compromise().unwrap();
        let mut stale = program.channel(&chan).unwrap().clone();
        stale.my_bal = 1_000;
        stale.remote_bal = 0;
        teechain::settle::current_settlement_tx(&stale)
    };
    net.command(
        2,
        Command::CoSign {
            req_id: 1,
            tx: forged.clone(),
        },
    )
    .unwrap();
    let refused = net
        .node(2)
        .events
        .iter()
        .any(|(_, e)| matches!(e, HostEvent::CoSignResult { refused: true, .. }));
    println!("committee member refused stale settlement: {refused}");
    assert!(refused);
    assert!(
        net.chain.lock().submit(forged).is_err(),
        "1 of 2 signatures cannot spend the deposit"
    );

    // --- Crash failover ----------------------------------------------
    // Alice's machine dies entirely. The committee member holds the
    // replicated state: force-freeze, then settle at the TRUE balances.
    net.node_mut(0).enclave.crash();
    net.command(2, Command::ReadReplica).unwrap();
    net.command(2, Command::SettleFromReplica).unwrap();
    net.settle_network();
    net.mine(1);
    let alice_addr = {
        let p = net.node(2).enclave.program().unwrap();
        p.replica_channel(&chan).unwrap().my_settlement
    };
    println!(
        "after crash failover, Alice's settlement address holds {}",
        net.chain_balance(&alice_addr)
    );
    assert_eq!(net.chain_balance(&alice_addr), 600);
    println!("balance correctness held under crash AND compromise.");
}
