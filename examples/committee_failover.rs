//! Fault tolerance (§6): committee chains survive a TEE crash, and
//! m-of-n thresholds defeat a *compromised* TEE trying to settle at a
//! stale state.
//!
//! Run with: `cargo run --example committee_failover`

use teechain::enclave::Command;
use teechain::ops::OpOutput;
use teechain::testkit::Cluster;

fn main() {
    // Alice (0) pays Bob (1); Alice's TEE is replicated to a committee
    // member (2) with a 2-of-2 deposit threshold.
    let mut net = Cluster::functional(3);
    net.attach_backup(0, 2);
    net.connect(0, 1);
    let chan = net.open_channel(0, 1, "alice-bob");
    let deposit = net.fund_deposit(0, 1_000, 2); // 2-of-2 committee.
    println!(
        "deposit committee: {}-of-{}",
        deposit.committee.m,
        deposit.committee.n()
    );
    net.approve_and_associate(0, 1, chan, &deposit);
    net.pay(0, chan, 400).unwrap();
    println!("honest state: {:?}", net.balances(0, chan));

    // --- Byzantine attempt -------------------------------------------
    // Alice's TEE is compromised (think Foreshadow): the attacker
    // extracts the channel and forges a settlement at the PRE-payment
    // state, trying to claw back the 400 already paid to Bob.
    let forged = {
        let (program, _) = net.node_mut(0).enclave.compromise().unwrap();
        let mut stale = program.channel(&chan).unwrap().clone();
        stale.my_bal = 1_000;
        stale.remote_bal = 0;
        teechain::settle::current_settlement_tx(&stale)
    };
    // The co-sign operation's typed output carries the verdict.
    let verdict = net.exec(
        2,
        Command::CoSign {
            req_id: 1,
            tx: forged.clone(),
        },
    );
    let refused = matches!(verdict, OpOutput::CoSigned { refused: true, .. });
    println!("committee member refused stale settlement: {refused}");
    assert!(refused);
    assert!(
        net.chain.lock().submit(forged).is_err(),
        "1 of 2 signatures cannot spend the deposit"
    );

    // --- Crash failover ----------------------------------------------
    // Alice's machine dies entirely. The committee member holds the
    // replicated state: force-freeze, then settle at the TRUE balances.
    net.node_mut(0).enclave.crash();
    let replica = net.exec(2, Command::ReadReplica);
    println!("replica state before failover: {replica:?}");
    net.exec(2, Command::SettleFromReplica);
    net.mine(1);
    let alice_addr = {
        let p = net.node(2).enclave.program().unwrap();
        p.replica_channel(&chan).unwrap().my_settlement
    };
    println!(
        "after crash failover, Alice's settlement address holds {}",
        net.chain_balance(&alice_addr)
    );
    assert_eq!(net.chain_balance(&alice_addr), 600);
    println!("balance correctness held under crash AND compromise.");
}
