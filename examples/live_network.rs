//! Live network: the same Teechain protocol that runs in the simulator,
//! now on real OS threads, real localhost TCP sockets and real clocks.
//!
//! Three nodes — Alice, Bob, Carol — each run their enclave + host on a
//! dedicated thread. The first act uses the in-process channel
//! transport; the second act repeats the flow over TCP sockets, byte-
//! identical wire format and all; the third act runs it on the sharded
//! reactor runtime, where the nodes share a fixed worker pool instead
//! of owning threads. Every interaction is still a correlated operation
//! (`OpId` → typed `Completion`); only the substrate changed.
//!
//! Run with: `cargo run --release --example live_network`

use std::time::Instant;
use teechain::live::{LiveCluster, LiveConfig};
use teechain::ops::SettleKind;

fn tour(net: &LiveCluster, transport: &str) {
    println!("== {transport} ==");
    println!("Alice  = {}", net.ids[0].fingerprint());
    println!("Bob    = {}", net.ids[1].fingerprint());
    println!("Carol  = {}", net.ids[2].fingerprint());

    // 1. Channels along the line Alice - Bob - Carol. Attestation,
    //    channel opening and deposit funding all cross the real wire.
    let ab = net.standard_channel(0, 1, &format!("{transport}-ab"), 10_000, 1);
    let bc = net.standard_channel(1, 2, &format!("{transport}-bc"), 10_000, 1);
    println!(
        "[1] channels open+funded: {} and {}",
        ab.short(),
        bc.short()
    );

    // 2. Direct payments, timed on the wall clock.
    let t0 = Instant::now();
    let count = 500;
    for _ in 0..count {
        net.pay(0, ab, 2).expect("payment");
    }
    let elapsed = t0.elapsed();
    println!(
        "[2] {count} sequential payments in {:.1} ms ({:.0} tx/s round-trip)",
        elapsed.as_secs_f64() * 1e3,
        count as f64 / elapsed.as_secs_f64()
    );

    // 3. A multi-hop payment Alice -> Bob -> Carol: locks on both
    //    channels, delivery, unlock — all real messages.
    let d = net
        .pay_multihop(&[0, 1, 2], &[ab, bc], 250, &format!("{transport}-mh"))
        .expect("multihop");
    println!("[3] multi-hop delivered {} to Carol", d.amount);

    // 4. Typed failure: overspending is refused by Alice's own enclave.
    let err = net.pay(0, ab, 1_000_000).expect_err("overspend refused");
    println!("[4] typed refusal: {err}");

    // 5. Settle Bob-Carol on chain (balances are non-neutral after the
    //    multi-hop delivery).
    let s = net.settle_channel(1, bc).expect("settle");
    match s.kind {
        SettleKind::OnChain(txid) => println!("[5] settled on chain: {}", txid.short()),
        SettleKind::OffChain => println!("[5] settled off chain"),
    }
    println!();
}

fn main() {
    // Act I: in-process channels — every node a thread, zero kernel I/O.
    let net = LiveCluster::over_threads(LiveConfig {
        n: 3,
        seed: 2026,
        ..LiveConfig::default()
    });
    tour(&net, "threads");
    net.shutdown();

    // Act II: localhost TCP — same protocol bytes, now framed with the
    // wire codec and pushed through real sockets.
    let net = LiveCluster::over_tcp(LiveConfig {
        n: 3,
        seed: 2026,
        ..LiveConfig::default()
    })
    .expect("bind localhost listeners");
    tour(&net, "tcp");
    net.shutdown();

    // Act III: the reactor runtime — same three nodes, but scheduled
    // onto a fixed worker pool over the non-blocking multiplexed
    // transport (the configuration that scales to 1,000+ nodes).
    let net = LiveCluster::over_reactor(LiveConfig {
        n: 3,
        seed: 2026,
        ..LiveConfig::default()
    })
    .expect("bind reactor listener");
    tour(&net, "reactor");
    let history = net.completion_log();
    let threads = net.runtime_threads();
    let nodes = net.shutdown();
    println!(
        "Done: {} live nodes wound down cleanly; {} operations completed over the reactor ({} runtime threads), every one exactly once.",
        nodes.len(),
        history.len(),
        threads
    );
}
